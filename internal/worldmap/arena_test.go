package worldmap

import (
	"testing"

	"qserve/internal/geom"
)

func TestGenerateArenaDefault(t *testing.T) {
	m, err := GenerateArena(DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rooms) != 1 {
		t.Errorf("arena rooms = %d", len(m.Rooms))
	}
	if len(m.Spawns) != 16 || len(m.Items) != 48 {
		t.Errorf("spawns=%d items=%d", len(m.Spawns), len(m.Items))
	}
	// Shell (6) plus 3x3 pillars.
	if len(m.Brushes) != 6+9 {
		t.Errorf("brushes = %d, want 15", len(m.Brushes))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestArenaEverythingVisible(t *testing.T) {
	m, _ := GenerateArena(DefaultArenaConfig())
	if !m.Visible(0, 0) {
		t.Error("arena room not visible to itself")
	}
	if got := len(m.VisibleRooms(0)); got != 1 {
		t.Errorf("visible rooms = %d", got)
	}
	// Every in-arena point resolves to room 0.
	if got := m.RoomAt(geom.V(500, 500, 30)); got != 0 {
		t.Errorf("RoomAt center = %d", got)
	}
	if got := m.RoomAt(geom.V(-200, 0, 0)); got != -1 {
		t.Errorf("RoomAt outside = %d", got)
	}
}

func TestArenaSpawnsAndItemsAvoidPillars(t *testing.T) {
	cfg := DefaultArenaConfig()
	m, _ := GenerateArena(cfg)
	var pillars []geom.AABB
	for _, b := range m.Brushes[6:] {
		pillars = append(pillars, b.Box)
	}
	for i, s := range m.Spawns {
		for _, p := range pillars {
			if p.Contains(geom.V(s.Pos.X, s.Pos.Y, 10)) {
				t.Errorf("spawn %d inside pillar", i)
			}
		}
	}
	for i, it := range m.Items {
		for _, p := range pillars {
			if p.Contains(geom.V(it.Pos.X, it.Pos.Y, 10)) {
				t.Errorf("item %d inside pillar", i)
			}
		}
	}
}

func TestArenaWaypointGraphConnected(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := DefaultArenaConfig()
		cfg.Seed = seed
		m, err := GenerateArena(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Validate() checks connectivity; also check link symmetry.
		for _, w := range m.Waypoints {
			for _, l := range w.Links {
				found := false
				for _, back := range m.Waypoints[l].Links {
					if back == w.ID {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d: asymmetric link %d->%d", seed, w.ID, l)
				}
			}
		}
	}
}

func TestArenaDensePillarsPrunes(t *testing.T) {
	cfg := DefaultArenaConfig()
	cfg.PillarGrid = 5
	cfg.PillarSize = 120
	cfg.WaypointGrid = 8
	m, err := GenerateArena(cfg)
	if err != nil {
		t.Fatalf("dense arena: %v", err)
	}
	if len(m.Waypoints) == 0 {
		t.Fatal("all waypoints pruned")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate after prune: %v", err)
	}
}

func TestArenaConfigValidation(t *testing.T) {
	bad := []func(*ArenaConfig){
		func(c *ArenaConfig) { c.Size = 0 },
		func(c *ArenaConfig) { c.PillarGrid = -1 },
		func(c *ArenaConfig) { c.PillarGrid = 10; c.PillarSize = 200 },
		func(c *ArenaConfig) { c.Spawns = 0 },
		func(c *ArenaConfig) { c.WaypointGrid = 1 },
	}
	for i, mut := range bad {
		cfg := DefaultArenaConfig()
		mut(&cfg)
		if _, err := GenerateArena(cfg); err == nil {
			t.Errorf("bad arena config %d accepted", i)
		}
	}
}

func TestArenaNoPillars(t *testing.T) {
	cfg := DefaultArenaConfig()
	cfg.PillarGrid = 0
	m, err := GenerateArena(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Brushes) != 6 {
		t.Errorf("brushes = %d, want shell only", len(m.Brushes))
	}
}

func TestArenaDeterministic(t *testing.T) {
	a, _ := GenerateArena(DefaultArenaConfig())
	b, _ := GenerateArena(DefaultArenaConfig())
	if len(a.Items) != len(b.Items) {
		t.Fatal("non-deterministic arena")
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatal("arena items differ across identical seeds")
		}
	}
}
