package worldmap

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// mapFile is the on-disk JSON form of a Map. The visibility matrix is not
// stored; it is recomputed on load from the portal graph.
type mapFile struct {
	Version     int     `json:"version"`
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	CellSize    float64 `json:"cell_size"`
	WallSize    float64 `json:"wall_size"`
	VisDepth    int     `json:"visibility_depth"`
	Bounds      [2][3]float64
	Interior    [2][3]float64
	Brushes     []Brush
	Rooms       []Room
	Portals     []Portal
	Spawns      []SpawnPoint
	Items       []ItemSpawn
	Teleporters []Teleporter
	Doors       []DoorSpec
	Waypoints   []Waypoint
}

const fileVersion = 1

// Save writes the map as JSON.
func (m *Map) Save(w io.Writer) error {
	f := mapFile{
		Version:  fileVersion,
		Name:     m.Name,
		Rows:     m.Rows,
		Cols:     m.Cols,
		CellSize: m.CellSize,
		WallSize: m.WallSize,
		VisDepth: 2,
		Bounds: [2][3]float64{
			{m.Bounds.Min.X, m.Bounds.Min.Y, m.Bounds.Min.Z},
			{m.Bounds.Max.X, m.Bounds.Max.Y, m.Bounds.Max.Z},
		},
		Interior: [2][3]float64{
			{m.Interior.Min.X, m.Interior.Min.Y, m.Interior.Min.Z},
			{m.Interior.Max.X, m.Interior.Max.Y, m.Interior.Max.Z},
		},
		Brushes:     m.Brushes,
		Rooms:       m.Rooms,
		Portals:     m.Portals,
		Spawns:      m.Spawns,
		Items:       m.Items,
		Teleporters: m.Teleporters,
		Doors:       m.Doors,
		Waypoints:   m.Waypoints,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// Load reads a map saved by Save, recomputes visibility, and validates it.
func Load(r io.Reader) (*Map, error) {
	var f mapFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("worldmap: decode: %w", err)
	}
	if f.Version != fileVersion {
		return nil, fmt.Errorf("worldmap: unsupported map file version %d", f.Version)
	}
	m := &Map{
		Name:        f.Name,
		Rows:        f.Rows,
		Cols:        f.Cols,
		CellSize:    f.CellSize,
		WallSize:    f.WallSize,
		Brushes:     f.Brushes,
		Rooms:       f.Rooms,
		Portals:     f.Portals,
		Spawns:      f.Spawns,
		Items:       f.Items,
		Teleporters: f.Teleporters,
		Doors:       f.Doors,
		Waypoints:   f.Waypoints,
	}
	m.Bounds.Min.X, m.Bounds.Min.Y, m.Bounds.Min.Z = f.Bounds[0][0], f.Bounds[0][1], f.Bounds[0][2]
	m.Bounds.Max.X, m.Bounds.Max.Y, m.Bounds.Max.Z = f.Bounds[1][0], f.Bounds[1][1], f.Bounds[1][2]
	m.Interior.Min.X, m.Interior.Min.Y, m.Interior.Min.Z = f.Interior[0][0], f.Interior[0][1], f.Interior[0][2]
	m.Interior.Max.X, m.Interior.Max.Y, m.Interior.Max.Z = f.Interior[1][0], f.Interior[1][1], f.Interior[1][2]
	depth := f.VisDepth
	if depth <= 0 {
		depth = 2
	}
	m.computeVisibility(depth)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveFile writes the map to a file path.
func (m *Map) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("worldmap: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a map from a file path.
func LoadFile(path string) (*Map, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("worldmap: %w", err)
	}
	defer f.Close()
	return Load(f)
}
