package worldmap

import (
	"fmt"
	"strings"
)

// RenderASCII draws a top-down schematic of the room grid: room IDs,
// doorways, item counts, spawn and teleporter markers. It is a debugging
// aid for cmd/qmap and for test failure output.
func (m *Map) RenderASCII() string {
	if m.Rows == 0 || m.Cols == 0 {
		return "(non-grid map)\n"
	}
	itemCount := make(map[int]int)
	for _, it := range m.Items {
		itemCount[it.RoomID]++
	}
	teleSrc := make(map[int]bool)
	teleDst := make(map[int]bool)
	for _, t := range m.Teleporters {
		if id := m.RoomAt(t.Trigger.Center()); id >= 0 {
			teleSrc[id] = true
		}
		if id := m.RoomAt(t.Dest); id >= 0 {
			teleDst[id] = true
		}
	}
	eastDoor := make(map[int]bool)
	northDoor := make(map[int]bool)
	for _, p := range m.Portals {
		lo, hi := p.RoomA, p.RoomB
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi == lo+1 {
			eastDoor[lo] = true
		} else {
			northDoor[lo] = true
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "map %q: %d rooms, %d portals, %d items, %d spawns, %d teleporters, %d brushes\n",
		m.Name, len(m.Rooms), len(m.Portals), len(m.Items), len(m.Spawns), len(m.Teleporters), len(m.Brushes))

	cellW := 9
	hline := func(row int) {
		b.WriteByte('+')
		for col := 0; col < m.Cols; col++ {
			id := row*m.Cols + col
			if row < m.Rows && northDoor[id] {
				seg := strings.Repeat("-", (cellW-2)/2)
				b.WriteString(seg + "  " + strings.Repeat("-", cellW-2-len(seg)))
			} else {
				b.WriteString(strings.Repeat("-", cellW))
			}
			b.WriteByte('+')
		}
		b.WriteByte('\n')
	}

	// Render north row last (row m.Rows-1 at top).
	for row := m.Rows - 1; row >= 0; row-- {
		hline(row)
		b.WriteByte('|')
		for col := 0; col < m.Cols; col++ {
			id := row*m.Cols + col
			mark := ""
			if teleSrc[id] {
				mark += "T"
			}
			if teleDst[id] {
				mark += "t"
			}
			cell := fmt.Sprintf("%3d i%d%s", id, itemCount[id], mark)
			if len(cell) > cellW {
				cell = cell[:cellW]
			}
			b.WriteString(fmt.Sprintf("%-*s", cellW, cell))
			if eastDoor[id] && col+1 < m.Cols {
				b.WriteByte(' ')
			} else {
				b.WriteByte('|')
			}
		}
		b.WriteByte('\n')
	}
	// Bottom border.
	b.WriteByte('+')
	for col := 0; col < m.Cols; col++ {
		b.WriteString(strings.Repeat("-", cellW))
		b.WriteByte('+')
	}
	b.WriteByte('\n')
	return b.String()
}

// Stats summarizes structural map properties for tooling output.
type Stats struct {
	Rooms, Portals, Brushes     int
	Items, Spawns, Teleporters  int
	Waypoints, WaypointLinks    int
	AvgVisibleRooms             float64
	InteriorVolume, WorldVolume float64
}

// ComputeStats derives summary statistics for the map.
func (m *Map) ComputeStats() Stats {
	s := Stats{
		Rooms:          len(m.Rooms),
		Portals:        len(m.Portals),
		Brushes:        len(m.Brushes),
		Items:          len(m.Items),
		Spawns:         len(m.Spawns),
		Teleporters:    len(m.Teleporters),
		Waypoints:      len(m.Waypoints),
		InteriorVolume: m.Interior.Volume(),
		WorldVolume:    m.Bounds.Volume(),
	}
	for _, w := range m.Waypoints {
		s.WaypointLinks += len(w.Links)
	}
	s.WaypointLinks /= 2
	if n := len(m.Rooms); n > 0 {
		total := 0
		for a := 0; a < n; a++ {
			total += len(m.VisibleRooms(a))
		}
		s.AvgVisibleRooms = float64(total) / float64(n)
	}
	return s
}
