package sim

import (
	"sync/atomic"
	"testing"
)

func TestAdvanceOrdering(t *testing.T) {
	s := New(Config{Procs: 2})
	var order []int
	body := func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Advance(int64(100 * (p.ID + 1))) // proc 0: +100, proc 1: +200
			order = append(order, p.ID)
		}
	}
	if err := s.Run(body); err != nil {
		t.Fatal(err)
	}
	// Events (post-advance) occur at: p0: 100,200,300; p1: 200,400,600.
	// Ties (200) break by ID: p0 first.
	want := []int{0, 0, 1, 0, 1, 1}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Procs()[0].Now() != 300 || s.Procs()[1].Now() != 600 {
		t.Errorf("clocks = %d, %d", s.Procs()[0].Now(), s.Procs()[1].Now())
	}
}

func TestLockMutualExclusionInVirtualTime(t *testing.T) {
	s := New(Config{Procs: 3})
	var l Lock
	type span struct{ from, to int64 }
	spans := make([]span, 3)
	body := func(p *Proc) {
		p.Advance(int64(p.ID) * 10) // stagger requests
		l.Lock(p)
		from := p.Now()
		p.Advance(100) // hold for 100ns of work
		to := p.Now()
		l.Unlock(p)
		spans[p.ID] = span{from, to}
	}
	if err := s.Run(body); err != nil {
		t.Fatal(err)
	}
	// Hold intervals must not overlap.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			a, b := spans[i], spans[j]
			if a.from < b.to && b.from < a.to {
				t.Fatalf("overlapping holds: %v %v", a, b)
			}
		}
	}
	if l.Acquisitions != 3 || l.Contended != 2 {
		t.Errorf("acquisitions=%d contended=%d", l.Acquisitions, l.Contended)
	}
	if l.TotalWaitNs <= 0 {
		t.Error("no wait time accumulated despite contention")
	}
	if l.Held() {
		t.Error("lock still held after run")
	}
}

func TestLockGrantsInRequestOrder(t *testing.T) {
	s := New(Config{Procs: 3})
	var l Lock
	var grants []int
	body := func(p *Proc) {
		// Proc 0 takes the lock immediately and holds it long; procs 2
		// and 1 request at times 10 and 20 respectively — grant order
		// must be 2 then 1 (virtual request order), not host arrival.
		switch p.ID {
		case 0:
			l.Lock(p)
			p.Advance(1000)
			l.Unlock(p)
		case 1:
			p.Advance(20)
			l.Lock(p)
			grants = append(grants, 1)
			p.Advance(10)
			l.Unlock(p)
		case 2:
			p.Advance(10)
			l.Lock(p)
			grants = append(grants, 2)
			p.Advance(10)
			l.Unlock(p)
		}
	}
	if err := s.Run(body); err != nil {
		t.Fatal(err)
	}
	if len(grants) != 2 || grants[0] != 2 || grants[1] != 1 {
		t.Fatalf("grant order = %v, want [2 1]", grants)
	}
}

func TestLockWaiterClockPulledToRelease(t *testing.T) {
	s := New(Config{Procs: 2})
	var l Lock
	var waiterClock int64
	body := func(p *Proc) {
		if p.ID == 0 {
			l.Lock(p)
			p.Advance(500)
			l.Unlock(p)
		} else {
			p.Advance(10)
			wait := l.Lock(p)
			waiterClock = p.Now()
			if wait != 490 {
				t.Errorf("wait = %d, want 490", wait)
			}
			l.Unlock(p)
		}
	}
	if err := s.Run(body); err != nil {
		t.Fatal(err)
	}
	if waiterClock != 500 {
		t.Errorf("waiter acquired at %d, want 500", waiterClock)
	}
}

func TestUnlockNotHeldErrors(t *testing.T) {
	s := New(Config{Procs: 1})
	var l Lock
	err := s.Run(func(p *Proc) {
		l.Unlock(p)
		p.Advance(1) // give scheduler a chance to see the error
	})
	if err == nil {
		t.Error("foreign unlock not reported")
	}
}

func TestWaitWake(t *testing.T) {
	s := New(Config{Procs: 2})
	procs := s.Procs()
	var waited int64
	body := func(p *Proc) {
		if p.ID == 0 {
			waited = p.Wait()
			if p.Now() != 300 {
				t.Errorf("woken at %d", p.Now())
			}
		} else {
			p.Advance(300)
			s.Wake(procs[0], p.Now())
		}
	}
	if err := s.Run(body); err != nil {
		t.Fatal(err)
	}
	if waited != 300 {
		t.Errorf("waited %d", waited)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New(Config{Procs: 2})
	err := s.Run(func(p *Proc) {
		p.Wait() // everyone waits, nobody wakes
	})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestSMTPenalty(t *testing.T) {
	// Two contexts on one core, both computing: each advance costs x1.6.
	s := New(Config{Procs: 2, Cores: 1, SMTPenalty: 1.6})
	body := func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Advance(100)
		}
	}
	if err := s.Run(body); err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Procs() {
		if p.Now() != 4*160 {
			t.Errorf("proc %d clock = %d, want 640", p.ID, p.Now())
		}
	}

	// Separate cores: no penalty.
	s2 := New(Config{Procs: 2, Cores: 2, SMTPenalty: 1.6})
	if err := s2.Run(body); err != nil {
		t.Fatal(err)
	}
	for _, p := range s2.Procs() {
		if p.Now() != 400 {
			t.Errorf("separate-core proc clock = %d", p.Now())
		}
	}
}

func TestSMTIgnoresIdleSibling(t *testing.T) {
	s := New(Config{Procs: 2, Cores: 1, SMTPenalty: 2.0})
	body := func(p *Proc) {
		if p.ID == 0 {
			// Idle-wait far into the future, consuming no core.
			p.AdvanceTo(10000)
		} else {
			p.Advance(100)
			if p.Now() != 100 {
				t.Errorf("penalized despite idle sibling: clock=%d", p.Now())
			}
		}
	}
	if err := s.Run(body); err != nil {
		t.Fatal(err)
	}
}

func TestRecvSemantics(t *testing.T) {
	s := New(Config{Procs: 1})
	src := &PeriodicSource{Start: 100, Period: 50, End: 220, Make: func(seq int64) any { return seq }}
	err := s.Run(func(p *Proc) {
		// Arrival at 100: blocking recv jumps the clock there.
		a, ok := p.Recv(src, 1000)
		if !ok || a.At != 100 || p.Now() != 100 || a.Payload.(int64) != 0 {
			t.Errorf("first recv: %+v now=%d", a, p.Now())
		}
		// Next arrival at 150: timeout 20 expires first.
		_, ok = p.Recv(src, 20)
		if ok || p.Now() != 120 {
			t.Errorf("timeout recv: ok=%v now=%d", ok, p.Now())
		}
		// Poll at 120: nothing queued yet.
		if _, ok := p.Poll(src); ok {
			t.Error("poll returned future arrival")
		}
		// Blocking: arrival at 150.
		a, ok = p.Recv(src, -1)
		if !ok || a.At != 150 || p.Now() != 150 {
			t.Errorf("second recv: %+v now=%d", a, p.Now())
		}
		// Advance past 200: the third arrival is queued; Poll gets it.
		p.Advance(100)
		a, ok = p.Poll(src)
		if !ok || a.At != 200 {
			t.Errorf("poll queued: %+v", a)
		}
		// Exhausted: timeout path.
		if _, ok := p.Recv(src, 30); ok {
			t.Error("recv on exhausted source succeeded")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvForeverOnExhaustedSourceErrors(t *testing.T) {
	s := New(Config{Procs: 1})
	src := &PeriodicSource{Start: 0, Period: 10, End: 0}
	err := s.Run(func(p *Proc) {
		p.Recv(src, -1)
	})
	if err == nil {
		t.Error("blocking recv on empty source not reported")
	}
}

func TestMergedSourceOrdering(t *testing.T) {
	s := New(Config{Procs: 1})
	a := &PeriodicSource{Start: 0, Period: 100, End: 300, Make: func(int64) any { return "a" }}
	b := &PeriodicSource{Start: 50, Period: 100, End: 300, Make: func(int64) any { return "b" }}
	m := NewMergedSource(a, b)
	var times []int64
	var tags []string
	err := s.Run(func(p *Proc) {
		for {
			arr, ok := p.Recv(m, -1)
			if !ok {
				return
			}
			times = append(times, arr.At)
			tags = append(tags, arr.Payload.(string))
			if m.Peek() == Infinity {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wantT := []int64{0, 50, 100, 150, 200, 250}
	wantTag := []string{"a", "b", "a", "b", "a", "b"}
	if len(times) != len(wantT) {
		t.Fatalf("times = %v", times)
	}
	for i := range wantT {
		if times[i] != wantT[i] || tags[i] != wantTag[i] {
			t.Fatalf("merged stream = %v %v", times, tags)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(Config{Procs: 4, Cores: 2, SMTPenalty: 1.5})
		var l Lock
		body := func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Advance(int64(7 + p.ID*3))
				l.Lock(p)
				p.Advance(13)
				l.Unlock(p)
			}
		}
		if err := s.Run(body); err != nil {
			t.Fatal(err)
		}
		out := make([]int64, 4)
		for i, p := range s.Procs() {
			out[i] = p.Now()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic clocks: %v vs %v", a, b)
		}
	}
}

// TestOnlyOneProcRunsAtOnce verifies the cooperative invariant that makes
// sharing game state safe.
func TestOnlyOneProcRunsAtOnce(t *testing.T) {
	s := New(Config{Procs: 8})
	var inside atomic.Int32
	var violated atomic.Bool
	body := func(p *Proc) {
		for i := 0; i < 200; i++ {
			if inside.Add(1) != 1 {
				violated.Store(true)
			}
			// Simulated "work" with no host-level yielding.
			x := 0
			for j := 0; j < 100; j++ {
				x += j
			}
			_ = x
			inside.Add(-1)
			p.Advance(10)
		}
	}
	if err := s.Run(body); err != nil {
		t.Fatal(err)
	}
	if violated.Load() {
		t.Fatal("two procs executed concurrently")
	}
}

func BenchmarkAdvanceYield(b *testing.B) {
	s := New(Config{Procs: 2})
	n := b.N
	body := func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Advance(10)
		}
	}
	b.ResetTimer()
	if err := s.Run(body); err != nil {
		b.Fatal(err)
	}
}

func TestBodyPanicSurfacesAsError(t *testing.T) {
	s := New(Config{Procs: 2})
	err := s.Run(func(p *Proc) {
		if p.ID == 1 {
			p.Advance(10)
			panic("boom")
		}
		p.Advance(100)
	})
	if err == nil {
		t.Fatal("panic in proc body not surfaced")
	}
}

func TestTryLockRefusesWithoutQueueing(t *testing.T) {
	s := New(Config{Procs: 2})
	var l Lock
	results := make([]bool, 2)
	waits := make([]int64, 2)
	body := func(p *Proc) {
		if p.ID == 0 {
			l.Lock(p)
			p.Advance(100)
			l.Unlock(p)
			return
		}
		// Proc 1 probes at t=50, mid-hold: refused without advancing.
		p.Advance(50)
		before := p.Now()
		results[1] = l.TryLock(p)
		waits[1] = p.Now() - before
		// Probe again after the release point.
		p.AdvanceTo(200)
		results[0] = l.TryLock(p)
		if results[0] {
			l.Unlock(p)
		}
	}
	if err := s.Run(body); err != nil {
		t.Fatal(err)
	}
	if results[1] {
		t.Error("TryLock acquired a held lock")
	}
	if waits[1] != 0 {
		t.Errorf("refused TryLock advanced the clock by %d ns; refusal must not queue", waits[1])
	}
	if !results[0] {
		t.Error("TryLock failed on a free lock")
	}
	if l.Contended != 1 {
		t.Errorf("Contended = %d, want the single refusal", l.Contended)
	}
	if l.Acquisitions != 2 {
		t.Errorf("Acquisitions = %d, want lock + successful probe", l.Acquisitions)
	}
	if l.Held() {
		t.Error("lock still held after run")
	}
}
