package sim

import "container/heap"

// Lock is a virtual-time mutex. Contending contexts queue and are granted
// the lock in virtual-request order (earliest clock first, ties by ID),
// with the waiter's clock pulled up to the release time — the queueing
// delay is the lock wait the paper measures.
type Lock struct {
	held    bool
	holder  *Proc
	waiters procHeap

	// Stats.
	Acquisitions int64
	Contended    int64
	TotalWaitNs  int64
}

// Lock acquires the lock for p, returning the virtual wait time.
func (l *Lock) Lock(p *Proc) int64 {
	p.syncToOrder()
	l.Acquisitions++
	if !l.held {
		l.held = true
		l.holder = p
		return 0
	}
	l.Contended++
	heap.Push(&l.waiters, p)
	wait := p.Wait()
	l.TotalWaitNs += wait
	// The releaser set holder to us before waking.
	return wait
}

// TryLock attempts to acquire the lock for p without queueing. Like Lock
// it first syncs to virtual-time order, so whether the lock is free is
// decided at a deterministic point; it then either takes the lock (true)
// or leaves the state untouched (false). Contended is incremented on
// failure so refusal shows up in lock statistics.
func (l *Lock) TryLock(p *Proc) bool {
	p.syncToOrder()
	if l.held {
		l.Contended++
		return false
	}
	l.Acquisitions++
	l.held = true
	l.holder = p
	return true
}

// Unlock releases the lock, granting it to the earliest waiter if any.
func (l *Lock) Unlock(p *Proc) {
	if !l.held || l.holder != p {
		p.sim.err = errUnlockNotHeld(p.ID)
		return
	}
	if l.waiters.Len() == 0 {
		l.held = false
		l.holder = nil
		return
	}
	w := heap.Pop(&l.waiters).(*Proc)
	l.holder = w
	p.sim.Wake(w, p.clock)
}

// Held reports whether the lock is currently held (diagnostics).
func (l *Lock) Held() bool { return l.held }

type unlockErr int

func errUnlockNotHeld(id int) error { return unlockErr(id) }

func (e unlockErr) Error() string {
	return "sim: proc unlocked a lock it does not hold"
}
