// Package sim is a deterministic discrete-event execution engine that
// stands in for the paper's physical testbed (a quad Xeon with
// hyper-threading). Simulated hardware contexts run the *real* game code
// cooperatively — exactly one goroutine executes at a time, so shared
// state needs no host synchronization — while time is virtual: each
// context owns a nanosecond clock advanced by a cost model, lock
// contention queues in virtual time, and an SMT model slows contexts
// whose core sibling is busy.
//
// Scheduling is conservative: the runnable context with the smallest
// clock always executes next, and a context that overtakes another yields
// (see Proc.Advance), so virtual-time causality holds at the granularity
// of Advance calls. Runs are bit-for-bit deterministic: identical inputs
// produce identical timelines.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Infinity is the "never" timestamp for arrival sources.
const Infinity = math.MaxInt64

// procState enumerates a context's lifecycle.
type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateBlockedLock
	stateBlockedWait
	stateDone
)

// Proc is one simulated hardware context. All Proc methods must be
// called from within the proc's own body function.
type Proc struct {
	ID   int
	Core int // physical core (SMT siblings share one)

	sim   *Sim
	clock int64 // virtual ns
	state procState
	// idleUntil marks the end of the most recent idle (select-wait) jump;
	// a context whose clock has not passed idleUntil is sleeping, not
	// consuming its core, and does not slow its SMT sibling.
	idleUntil int64

	resume chan struct{}
	yield  chan struct{}

	heapIdx int // position in the runnable heap, -1 when absent
}

// Now returns the context's virtual clock in nanoseconds.
func (p *Proc) Now() int64 { return p.clock }

// Config parameterizes the simulated machine.
type Config struct {
	// Procs is the number of hardware contexts (server threads).
	Procs int
	// Cores is the number of physical cores; contexts beyond Cores share
	// cores as SMT siblings (context i runs on core i % Cores). Zero
	// means one core per context (no SMT sharing).
	Cores int
	// SMTPenalty multiplies compute cost while a core sibling is busy.
	// The paper's testbed shows 8 hyper-threaded contexts performing
	// barely above 4 cores, which corresponds to a penalty around 1.5-1.7.
	// Values below 1 are treated as 1 (no penalty).
	SMTPenalty float64
	// MemBeta models shared-bus/memory contention on the SMP: compute
	// cost is inflated by 1 + MemBeta × (number of *other* cores with a
	// busy context). The paper's quad Xeon shares one 400 MHz front-side
	// bus (Table 1), which bounds parallel speedup well below the core
	// count for this memory-intensive workload.
	MemBeta float64
}

// Sim is the simulated machine.
type Sim struct {
	cfg      Config
	procs    []*Proc
	runnable procHeap
	current  *Proc

	// bodies to start.
	bodies []func(*Proc)

	// smtBusy counts, per core, how many contexts are actively computing.
	err error
}

// New creates a machine with the given configuration.
func New(cfg Config) *Sim {
	if cfg.Procs <= 0 {
		panic("sim: need at least one proc")
	}
	if cfg.Cores <= 0 || cfg.Cores > cfg.Procs {
		cfg.Cores = cfg.Procs
	}
	if cfg.SMTPenalty < 1 {
		cfg.SMTPenalty = 1
	}
	s := &Sim{cfg: cfg}
	for i := 0; i < cfg.Procs; i++ {
		s.procs = append(s.procs, &Proc{
			ID:   i,
			Core: i % cfg.Cores,
			sim:  s,
			// idleUntil starts below the clock so a fresh context counts
			// as busy, not sleeping.
			idleUntil: -1,
			state:     stateNew,
			resume:    make(chan struct{}),
			yield:     make(chan struct{}),
			heapIdx:   -1,
		})
	}
	return s
}

// Procs returns the simulated contexts.
func (s *Sim) Procs() []*Proc { return s.procs }

// Run executes body(proc) on every context until all bodies return.
// It returns an error on virtual deadlock (blocked contexts with no
// runnable context to wake them).
func (s *Sim) Run(body func(*Proc)) error {
	for _, p := range s.procs {
		p.state = stateRunnable
		heap.Push(&s.runnable, p)
		go func(p *Proc) {
			defer func() {
				// A panic in the body would strand the scheduler, which
				// is waiting for this context to yield; surface it as a
				// run error instead.
				if r := recover(); r != nil {
					s.err = fmt.Errorf("sim: proc %d panicked: %v", p.ID, r)
				}
				p.state = stateDone
				p.yield <- struct{}{}
			}()
			<-p.resume
			body(p)
		}(p)
	}
	for s.runnable.Len() > 0 {
		p := heap.Pop(&s.runnable).(*Proc)
		p.state = stateRunning
		s.current = p
		p.resume <- struct{}{}
		<-p.yield
		if s.err != nil {
			// Propagated from a primitive: drain remaining procs is not
			// possible safely; report.
			return s.err
		}
		if p.state == stateRunnable {
			heap.Push(&s.runnable, p)
		}
	}
	var blocked []int
	for _, p := range s.procs {
		if p.state == stateBlockedLock || p.state == stateBlockedWait {
			blocked = append(blocked, p.ID)
		}
	}
	if len(blocked) > 0 {
		return fmt.Errorf("sim: virtual deadlock: procs %v blocked with no runnable context", blocked)
	}
	return nil
}

// yieldTo hands control back to the scheduler with the given state.
func (p *Proc) yieldTo(state procState) {
	p.state = state
	p.yield <- struct{}{}
	<-p.resume
}

// Sync yields until this context is the earliest runnable one, so a
// shared-state decision made right after (a frame join, a queue check)
// happens in virtual-time order. Lock and Recv call it internally.
func (p *Proc) Sync() { p.syncToOrder() }

// syncToOrder yields until this context is the earliest runnable one, so
// shared-state decisions (lock requests, frame joins) happen in virtual-
// time order.
func (p *Proc) syncToOrder() {
	for {
		min := p.sim.runnable.peek()
		if min == nil || !min.before(p) {
			return
		}
		p.yieldTo(stateRunnable)
	}
}

// before orders procs by (clock, ID) for deterministic scheduling.
func (a *Proc) before(b *Proc) bool {
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.ID < b.ID
}

// busy reports whether a context is actively computing (not blocked, not
// in an idle clock jump).
func (q *Proc) busy() bool {
	switch q.state {
	case stateRunnable, stateRunning:
		return q.clock > q.idleUntil
	default:
		return false
	}
}

// contentionFactor computes the compute-cost inflation from SMT sibling
// pressure and shared-bus contention with other busy cores.
func (p *Proc) contentionFactor() float64 {
	factor := 1.0
	cfg := &p.sim.cfg
	if cfg.SMTPenalty <= 1 && cfg.MemBeta <= 0 {
		return factor
	}
	otherCores := map[int]bool{}
	siblingBusy := false
	for _, q := range p.sim.procs {
		if q == p || !q.busy() {
			continue
		}
		if q.Core == p.Core {
			siblingBusy = true
		} else {
			otherCores[q.Core] = true
		}
	}
	if cfg.SMTPenalty > 1 && siblingBusy {
		factor *= cfg.SMTPenalty
	}
	if cfg.MemBeta > 0 {
		factor *= 1 + cfg.MemBeta*float64(len(otherCores))
	}
	return factor
}

// Advance charges ns of compute to this context, inflated by SMT and
// memory contention, then yields if the context has overtaken any
// runnable peer.
func (p *Proc) Advance(ns int64) {
	if ns < 0 {
		panic("sim: negative advance")
	}
	cost := int64(float64(ns) * p.contentionFactor())
	p.clock += cost
	p.syncToOrder()
}

// AdvanceTo moves the clock forward to at least t (no-op if already
// past), without the SMT penalty — used for idle waits.
func (p *Proc) AdvanceTo(t int64) {
	if t > p.clock {
		p.clock = t
		p.idleUntil = t
	}
	p.syncToOrder()
}

// Wait blocks the context until another context wakes it. The caller is
// responsible for registering itself somewhere a waker will find it.
// Returns the wait duration (the waker pulls the sleeper's clock up to
// its own).
func (p *Proc) Wait() int64 {
	t0 := p.clock
	p.yieldTo(stateBlockedWait)
	return p.clock - t0
}

// Wake makes a Wait-blocked context runnable, advancing its clock to at
// least the waker's time. It must be called by a running context (or
// before Run starts).
func (s *Sim) Wake(p *Proc, at int64) {
	if p.state != stateBlockedWait {
		s.err = fmt.Errorf("sim: waking proc %d in state %d", p.ID, p.state)
		return
	}
	if at > p.clock {
		p.clock = at
	}
	p.state = stateRunnable
	heap.Push(&s.runnable, p)
}

// procHeap is a min-heap over (clock, ID).
type procHeap []*Proc

func (h procHeap) Len() int           { return len(h) }
func (h procHeap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h procHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *procHeap) Push(x any)        { p := x.(*Proc); p.heapIdx = len(*h); *h = append(*h, p) }
func (h *procHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	p.heapIdx = -1
	*h = old[:n-1]
	return p
}

func (h procHeap) peek() *Proc {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}
