package sim

import "container/heap"

// Arrival is one queued datagram at a simulated port: the virtual time it
// becomes receivable and an opaque payload.
type Arrival struct {
	At      int64
	Payload any
}

// Source supplies a port's arrival stream in nondecreasing time order.
type Source interface {
	// Peek returns the next arrival time, or Infinity when exhausted.
	Peek() int64
	// Pop removes and returns the next arrival. Only valid when Peek
	// returned a finite time.
	Pop() Arrival
}

// Recv models the select(2) call on a port: block up to timeout virtual
// ns for an arrival. It returns the arrival and true, or false on
// timeout. The context's clock advances to the arrival (or timeout) and
// the span is idle time (no SMT pressure on the sibling).
//
// Recv tolerates sources whose contents change while the context sleeps
// (other contexts may migrate streams between ports, as the dynamic
// assignment policy does): after every clock advance it re-examines the
// source, and it only pops an arrival that is due at the current instant,
// with no yield between the check and the pop.
func (p *Proc) Recv(src Source, timeout int64) (Arrival, bool) {
	deadline := int64(Infinity)
	if timeout >= 0 {
		deadline = p.clock + timeout
	}
	for {
		next := src.Peek()
		if next != Infinity && next <= p.clock {
			return src.Pop(), true
		}
		if timeout < 0 && next == Infinity {
			p.sim.err = errRecvForever(p.ID)
			p.yieldTo(stateBlockedWait)
			return Arrival{}, false
		}
		wake := deadline
		if next < wake {
			wake = next
		}
		if wake <= p.clock {
			return Arrival{}, false // deadline passed with nothing queued
		}
		p.AdvanceTo(wake) // may yield; loop re-checks the source
	}
}

// Poll receives an already-queued arrival (time <= now) without waiting,
// modelling the non-blocking drain of a request queue.
func (p *Proc) Poll(src Source) (Arrival, bool) {
	if t := src.Peek(); t != Infinity && t <= p.clock {
		return src.Pop(), true
	}
	return Arrival{}, false
}

type errRecvForever int

func (e errRecvForever) Error() string {
	return "sim: blocking receive on an exhausted source would never return"
}

// PeriodicSource emits one arrival every Period ns starting at Start,
// until (not including) End — one automatic client's request stream. The
// payload passed to Make receives the sequence index.
type PeriodicSource struct {
	Start  int64
	Period int64
	End    int64
	Make   func(seq int64) any

	seq int64
}

// Peek implements Source.
func (s *PeriodicSource) Peek() int64 {
	t := s.Start + s.seq*s.Period
	if t >= s.End {
		return Infinity
	}
	return t
}

// Pop implements Source.
func (s *PeriodicSource) Pop() Arrival {
	t := s.Start + s.seq*s.Period
	var payload any
	if s.Make != nil {
		payload = s.Make(s.seq)
	}
	s.seq++
	return Arrival{At: t, Payload: payload}
}

// MergedSource k-way-merges several sources into one port stream — all
// the clients assigned to one server thread.
type MergedSource struct {
	srcs srcHeap
}

// NewMergedSource builds a merged stream over the given sources.
func NewMergedSource(srcs ...Source) *MergedSource {
	m := &MergedSource{}
	for i, s := range srcs {
		if s.Peek() != Infinity {
			m.srcs = append(m.srcs, srcEntry{s, i})
		}
	}
	heap.Init(&m.srcs)
	return m
}

// Peek implements Source.
func (m *MergedSource) Peek() int64 {
	if m.srcs.Len() == 0 {
		return Infinity
	}
	return m.srcs[0].src.Peek()
}

// Pop implements Source.
func (m *MergedSource) Pop() Arrival {
	e := m.srcs[0]
	a := e.src.Pop()
	if e.src.Peek() == Infinity {
		heap.Pop(&m.srcs)
	} else {
		heap.Fix(&m.srcs, 0)
	}
	return a
}

type srcEntry struct {
	src Source
	id  int // tie-break for determinism
}

type srcHeap []srcEntry

func (h srcHeap) Len() int { return len(h) }
func (h srcHeap) Less(i, j int) bool {
	ti, tj := h[i].src.Peek(), h[j].src.Peek()
	if ti != tj {
		return ti < tj
	}
	return h[i].id < h[j].id
}
func (h srcHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *srcHeap) Push(x any)   { *h = append(*h, x.(srcEntry)) }
func (h *srcHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
