package match

import (
	"sync"
	"sync/atomic"
	"time"

	"qserve/internal/protocol"
	"qserve/internal/server"
	"qserve/internal/transport"
)

// Lobby is the admission tier of a match-manager deployment: one
// underlying datagram endpoint shared by every match, fanned out by a
// transport.Mux. Each match owns a dynamically added mux port; the
// routing table maps a client's source address to its match's port, so
// gameplay traffic reaches the right engine without the lobby on the
// path. Unrouted datagrams (new clients) land on the control port: the
// lobby decodes the Connect, picks a match — the datagram's Match field
// names one, empty means "assign me" (rotation over live matches) —
// installs the route, and forwards the original Connect into the
// match's port, so the engine itself runs its normal admission path and
// the Accept the client sees is indistinguishable from a solo server's.
//
// Reconnects from a routed address flow straight to their match; a
// client that wants to switch matches must let its route age out
// (disconnect/eviction unroutes it) and connect again.
type Lobby struct {
	mgr *Manager
	mux *transport.Mux
	ctl transport.Conn

	mu    sync.Mutex
	names []string // assignment rotation, admission order
	next  int

	routed  atomic.Int64
	rejects atomic.Int64

	stopc     chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// lobbyPumpTick bounds how long the lobby blocks in Recv before
// re-checking for shutdown.
const lobbyPumpTick = 20 * time.Millisecond

// NewLobby wraps the endpoint in a Mux and starts the admission loop.
// The Lobby does not own conn; Close stops the loop and the mux pumps
// but leaves the endpoint open.
func NewLobby(mgr *Manager, conn transport.Conn) *Lobby {
	mux := transport.NewMux([]transport.Conn{conn})
	l := &Lobby{
		mgr:   mgr,
		mux:   mux,
		ctl:   mux.Port(0),
		stopc: make(chan struct{}),
	}
	l.wg.Add(1)
	go l.run()
	return l
}

// CreateMatch adds a mux port, builds an engine over it via build, and
// registers the result as a named match. The build callback must thread
// the manager's Shared pool into the engine Config for the idle-match
// memory bound to hold.
func (l *Lobby) CreateMatch(name string, build func(conn transport.Conn) (*server.Sequential, error)) (*Match, error) {
	port, mp := l.mux.AddPort()
	eng, err := build(mp)
	if err != nil {
		return nil, err
	}
	mt, err := l.mgr.add(name, eng, port)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.names = append(l.names, name)
	l.mu.Unlock()
	return mt, nil
}

// Close stops the admission loop and the mux pumps.
func (l *Lobby) Close() {
	l.closeOnce.Do(func() {
		close(l.stopc)
		l.wg.Wait()
		l.mux.Close()
	})
}

// Routed returns how many connects the lobby admitted to a match.
func (l *Lobby) Routed() int64 { return l.routed.Load() }

// Rejects returns how many connects named a match that doesn't exist.
func (l *Lobby) Rejects() int64 { return l.rejects.Load() }

// Unroute forgets a client's address (eviction, or switching matches).
func (l *Lobby) Unroute(addr transport.Addr) { l.mux.Unroute(addr) }

func (l *Lobby) run() {
	defer l.wg.Done()
	buf := make([]byte, transport.MaxDatagram)
	var wr protocol.Writer
	for {
		select {
		case <-l.stopc:
			return
		default:
		}
		n, from, err := l.ctl.Recv(buf, lobbyPumpTick)
		if err == transport.ErrTimeout {
			continue
		}
		if err != nil {
			return
		}
		msg, err := protocol.Decode(buf[:n])
		if err != nil {
			continue // corrupt datagram; same fate as anywhere else
		}
		c, ok := msg.(*protocol.Connect)
		if !ok {
			// Gameplay traffic from an unknown source: no session, no
			// route. Dropping mirrors what a solo server's seq filter
			// would do with it.
			continue
		}
		mt := l.pick(c.Match)
		if mt == nil {
			l.rejects.Add(1)
			wr.Reset()
			if protocol.Encode(&wr, &protocol.Reject{Reason: "no such match"}) == nil {
				_ = l.ctl.Send(from, wr.Bytes())
			}
			continue
		}
		// Route first, then forward: the engine's Accept must not race a
		// Move the client fires immediately after it.
		l.mux.Route(from, mt.port)
		l.mux.Forward(mt.port, buf[:n], from)
		l.mgr.Poke(mt.name)
		l.routed.Add(1)
	}
}

// pick resolves a Connect's match choice: a name looks up the live
// match table (nil if evicted or unknown), empty rotates over matches
// in admission order, skipping evicted ones.
func (l *Lobby) pick(want string) *Match {
	if want != "" {
		return l.mgr.lookup(want)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 0; i < len(l.names); i++ {
		n := l.names[(l.next+i)%len(l.names)]
		if mt := l.mgr.lookup(n); mt != nil {
			l.next = (l.next + i + 1) % len(l.names)
			return mt
		}
	}
	return nil
}
