package match

import (
	"sync"
	"testing"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/game"
	"qserve/internal/protocol"
	"qserve/internal/replay"
	"qserve/internal/server"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// Cross-instance isolation: two matches sharing one SharedBufs pool and
// interleaving frames must compute exactly the game each would compute
// alone. The pooled scratch (reply buffers, visibility index, sweep
// buffers) is the only state that crosses instances; if any of it leaks
// game-visible information the entity-table digests diverge.

// vclock is the deterministic frame-logic clock.
type vclock struct{ t time.Time }

func (v *vclock) now() time.Time       { return v.t }
func (v *vclock) tick(d time.Duration) { v.t = v.t.Add(d) }

// scriptedMatch is one engine with a raw scripted client: no bot AI, so
// the input stream is a pure function of the step index.
type scriptedMatch struct {
	eng    *server.Sequential
	world  *game.World
	clock  *vclock
	cli    *transport.MemConn
	srv    transport.Addr
	wr     protocol.Writer
	seq    uint32
	drain  []byte
	script func(step int) protocol.MoveCmd
}

func newScriptedMatch(t *testing.T, m *worldmap.Map, shared *server.SharedBufs, label string, script func(int) protocol.MoveCmd) *scriptedMatch {
	t.Helper()
	net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 8192})
	srvConn, err := net.Listen("srv:" + label)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Listen("cli:" + label)
	if err != nil {
		t.Fatal(err)
	}
	w, err := game.NewWorld(game.Config{Map: m})
	if err != nil {
		t.Fatal(err)
	}
	clock := &vclock{t: time.Unix(1000, 0)}
	eng, err := server.NewSequential(server.Config{
		World:      w,
		Conns:      []transport.Conn{srvConn},
		MaxClients: 8,
		Shared:     shared,
		Clock:      clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.StartStepped()
	return &scriptedMatch{
		eng: eng, world: w, clock: clock, cli: cli,
		srv: transport.MemAddr("srv:" + label), script: script,
		drain: make([]byte, transport.MaxDatagram),
	}
}

func (sm *scriptedMatch) send(t *testing.T, msg any) {
	t.Helper()
	sm.wr.Reset()
	if err := protocol.Encode(&sm.wr, msg); err != nil {
		t.Fatal(err)
	}
	if err := sm.cli.Send(sm.srv, sm.wr.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// step feeds the scripted input for one frame, advances the virtual
// clock, and steps the engine.
func (sm *scriptedMatch) step(t *testing.T, i int) {
	t.Helper()
	if i == 0 {
		sm.send(t, &protocol.Connect{Name: "scripted", FrameMs: 20, ProtocolVer: protocol.Version})
	} else {
		sm.seq++
		sm.send(t, &protocol.Move{Seq: sm.seq, Cmd: sm.script(i)})
	}
	sm.clock.tick(20 * time.Millisecond)
	sm.eng.StepFrame()
	// Drain the client's queue so long runs can't hit the queue bound.
	for {
		if _, _, err := sm.cli.Recv(sm.drain, 0); err != nil {
			break
		}
	}
}

func scriptA(i int) protocol.MoveCmd {
	cmd := protocol.MoveCmd{Forward: 320, Yaw: int16(i * 1117), Msec: 20}
	if i%7 == 3 {
		cmd.Buttons = protocol.BtnFire
	}
	return cmd
}

func scriptB(i int) protocol.MoveCmd {
	cmd := protocol.MoveCmd{Forward: 240, Side: 150, Yaw: int16(-i * 733), Msec: 20}
	if i%5 == 2 {
		cmd.Buttons = protocol.BtnJump
	}
	return cmd
}

// TestCrossInstanceDigestIsolation runs A and B interleaved on one
// shared pool, then each solo on its own pool, and requires bit-
// identical entity-table digests. Any cross-instance state leak through
// the shared scratch layer breaks the equality.
func TestCrossInstanceDigestIsolation(t *testing.T) {
	m := smallMap(t)
	const steps = 150

	runSolo := func(script func(int) protocol.MoveCmd, label string) uint64 {
		sm := newScriptedMatch(t, m, server.NewSharedBufs(), label, script)
		for i := 0; i < steps; i++ {
			sm.step(t, i)
		}
		sm.eng.Stop()
		return replay.TableDigest(sm.world)
	}
	wantA := runSolo(scriptA, "soloA")
	wantB := runSolo(scriptB, "soloB")

	// Interleaved: one pool, alternating frames — the scratch set A just
	// released is the one B picks up, every frame.
	shared := server.NewSharedBufs()
	a := newScriptedMatch(t, m, shared, "intA", scriptA)
	b := newScriptedMatch(t, m, shared, "intB", scriptB)
	for i := 0; i < steps; i++ {
		a.step(t, i)
		b.step(t, i)
	}
	a.eng.Stop()
	b.eng.Stop()

	if got := replay.TableDigest(a.world); got != wantA {
		t.Errorf("match A digest: interleaved %016x != solo %016x", got, wantA)
	}
	if got := replay.TableDigest(b.world); got != wantB {
		t.Errorf("match B digest: interleaved %016x != solo %016x", got, wantB)
	}
	if wantA == wantB {
		t.Fatal("scripts A and B converged to the same digest; the test lost its power")
	}
}

// TestEvictionIsolation crashes one match mid-frame (past the engine's
// own per-client containment) and requires the manager to evict exactly
// that match while its neighbor keeps serving frames and replies.
func TestEvictionIsolation(t *testing.T) {
	m := smallMap(t)
	var once sync.Once
	mgr := NewManager(Config{
		Workers:        2,
		ActiveInterval: 2 * time.Millisecond,
		IdleInterval:   10 * time.Millisecond,
		Hooks: Hooks{PreStep: func(name string) {
			if name == "bad" {
				var boom bool
				once.Do(func() { boom = true })
				if boom {
					panic("injected match crash")
				}
			}
		}},
	})
	net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 4096})
	srvConn, err := net.Listen("srv:0")
	if err != nil {
		t.Fatal(err)
	}
	lobby := NewLobby(mgr, srvConn)
	defer lobby.Close()
	for _, name := range []string{"good", "bad"} {
		if _, err := lobby.CreateMatch(name, func(conn transport.Conn) (*server.Sequential, error) {
			return newEngine(t, m, conn, mgr.Shared()), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	mgr.Start()

	bc, err := net.Listen("bot:good")
	if err != nil {
		t.Fatal(err)
	}
	bot, err := botclient.New(botclient.Config{
		Name: "g", Conn: bc, Server: transport.MemAddr("srv:0"), Map: m, Match: "good",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bot.Connect(); err != nil {
		t.Fatalf("bot connect: %v", err)
	}

	// Let the crash fire and the good match keep running past it.
	deadline := time.Now().Add(3 * time.Second)
	for mgr.Evictions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("injected panic never evicted the bad match")
		}
		bot.Step()
		time.Sleep(2 * time.Millisecond)
	}
	before := bot.Resp.Replies
	for i := 0; i < 40; i++ {
		bot.Step()
		time.Sleep(2 * time.Millisecond)
	}
	if bot.Resp.Replies <= before {
		t.Errorf("good match stopped replying after bad match eviction (%d -> %d)",
			before, bot.Resp.Replies)
	}
	if mgr.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", mgr.Evictions())
	}
	if mgr.Len() != 1 {
		t.Errorf("live matches = %d, want 1", mgr.Len())
	}
	// The freed name must no longer be assignable.
	if mt := mgr.lookup("bad"); mt != nil {
		t.Error("evicted match still resolvable by name")
	}

	lobby.Close()
	mgr.Stop()
	var evicted, healthy bool
	for _, st := range mgr.Stats() {
		switch st.Name {
		case "bad":
			evicted = st.Evicted
		case "good":
			healthy = !st.Evicted && st.Replies > 0
		}
	}
	if !evicted || !healthy {
		t.Errorf("post-mortem stats: bad evicted=%v, good healthy=%v", evicted, healthy)
	}
}
