package match

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/transport"
)

// buildFleet admits idle+active matches into a manager. Active matches
// get their own MemConn endpoint and a bot-visible address; idle ones
// just tick. Returns the active matches' endpoints' network.
func buildFleet(tb testing.TB, mgr *Manager, idle, active int) *transport.Network {
	tb.Helper()
	m := smallMap(tb)
	net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 4096})
	for i := 0; i < idle; i++ {
		conn, err := net.Listen(fmt.Sprintf("idle:%d", i))
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := mgr.Add(fmt.Sprintf("idle-%d", i), newEngine(tb, m, conn, mgr.Shared())); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < active; i++ {
		conn, err := net.Listen(fmt.Sprintf("act:%d", i))
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := mgr.Add(fmt.Sprintf("act-%d", i), newEngine(tb, m, conn, mgr.Shared())); err != nil {
			tb.Fatal(err)
		}
	}
	return net
}

// connectBots joins n bots to each active match, directly against the
// match's endpoint (lobby routing has its own tests). It pumps the
// scheduler manually while handshaking, so it works whether or not the
// manager's workers are running.
func connectBots(tb testing.TB, mgr *Manager, net *transport.Network, active, botsPer int) []*botclient.Bot {
	tb.Helper()
	m := smallMap(tb)
	stopPump := make(chan struct{})
	var pumpWg sync.WaitGroup
	pumpWg.Add(1)
	go func() {
		defer pumpWg.Done()
		for {
			select {
			case <-stopPump:
				return
			default:
			}
			if !mgr.dispatchOne() {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	defer func() {
		close(stopPump)
		pumpWg.Wait()
	}()
	var bots []*botclient.Bot
	for i := 0; i < active; i++ {
		for j := 0; j < botsPer; j++ {
			bc, err := net.Listen(fmt.Sprintf("bot:%d:%d", i, j))
			if err != nil {
				tb.Fatal(err)
			}
			bot, err := botclient.New(botclient.Config{
				Name:   fmt.Sprintf("b%d-%d", i, j),
				Conn:   bc,
				Server: transport.MemAddr(fmt.Sprintf("act:%d", i)),
				Map:    m,
				Seed:   int64(i*100 + j),
			})
			if err != nil {
				tb.Fatal(err)
			}
			if err := bot.Connect(); err != nil {
				tb.Fatalf("bot %d:%d connect: %v", i, j, err)
			}
			bots = append(bots, bot)
		}
	}
	return bots
}

// BenchmarkMatchManager measures the scheduler's per-frame dispatch
// cost with the headline fleet shape — 1000 idle + 8 active matches —
// by driving dispatchOne directly with always-due deadlines. The -race
// free run in `make instancing` gates allocs/op at 0 via
// TestSchedulerDispatchZeroAllocs; this reports the numbers.
func BenchmarkMatchManager(b *testing.B) {
	mgr := NewManager(Config{Workers: 1, ActiveInterval: time.Nanosecond, IdleInterval: time.Nanosecond})
	net := buildFleet(b, mgr, 1000, 8)
	bots := connectBots(b, mgr, net, 8, 2)
	// Poke admission through: every match steps at least once so all
	// lazy growth (heap capacity, scratch sets, reply buffers) happens
	// before measurement.
	for i := 0; i < 3000; i++ {
		mgr.dispatchOne()
	}
	for _, bot := range bots {
		bot.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.dispatchOne()
	}
	b.StopTimer()
	mgr.Stop()
}

// TestSchedulerDispatchZeroAllocs is the static fleet's allocation
// gate: once every match has stepped once, the pop→step→requeue path —
// including an idle match's scratch borrow/return round trip — must not
// allocate.
func TestSchedulerDispatchZeroAllocs(t *testing.T) {
	mgr := NewManager(Config{Workers: 1, ActiveInterval: time.Nanosecond, IdleInterval: time.Nanosecond})
	net := buildFleet(t, mgr, 64, 1)
	bots := connectBots(t, mgr, net, 1, 2)
	for i := 0; i < 1000; i++ {
		mgr.dispatchOne()
	}
	for _, bot := range bots {
		bot.Step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		mgr.dispatchOne()
	})
	mgr.Stop()
	if allocs != 0 {
		t.Errorf("scheduler dispatch allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestMatchManagerTailGate is the CI latency gate: 1000 idle + 8 active
// matches on the real worker pool, with live bot traffic, must keep the
// active matches' p99 frame step under a generous bound (solo steps are
// tens of microseconds; the bound catches interference regressions, not
// scheduler jitter on a loaded CI box) and must not need anywhere near
// one scratch set per match.
func TestMatchManagerTailGate(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet gate skipped in -short")
	}
	mgr := NewManager(Config{ActiveInterval: 10 * time.Millisecond, IdleInterval: 100 * time.Millisecond})
	net := buildFleet(t, mgr, 1000, 8)
	mgr.Start()
	bots := connectBots(t, mgr, net, 8, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, bot := range bots {
		wg.Add(1)
		go func(b *botclient.Bot) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				b.Step()
				time.Sleep(10 * time.Millisecond)
			}
		}(bot)
	}
	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()
	mgr.Stop()

	if ev := mgr.Evictions(); ev != 0 {
		t.Fatalf("evictions = %d, want 0", ev)
	}
	var worstP99 float64
	var activeFrames uint64
	for _, st := range mgr.Stats() {
		if st.Clients == 0 {
			continue
		}
		activeFrames += st.Frames
		if st.StepP99Ms > worstP99 {
			worstP99 = st.StepP99Ms
		}
	}
	if activeFrames == 0 {
		t.Fatal("active matches never stepped")
	}
	if worstP99 > 30 {
		t.Errorf("active-match step p99 = %.2fms, want < 30ms", worstP99)
	}
	if made := mgr.Shared().Made(); made > 200 {
		t.Errorf("scratch sets built = %d for 1008 matches; idle matches are hoarding buffers", made)
	}
}
