package match

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/game"
	"qserve/internal/server"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// testMap builds one small shared map: the map and its collision
// geometry are immutable, so every match's world can reference the same
// one (matching production, where a manager hosts many matches of few
// map variants).
var testMapOnce sync.Once
var testMap *worldmap.Map

func smallMap(t testing.TB) *worldmap.Map {
	t.Helper()
	testMapOnce.Do(func() {
		mc := worldmap.DefaultConfig()
		mc.Name = "gen-dm4"
		mc.Rows, mc.Cols = 2, 2
		mc.ItemsPerRoom = 1
		mc.TeleporterPairs = 0
		mc.Seed = 7
		testMap = worldmap.MustGenerate(mc)
	})
	return testMap
}

func newEngine(t testing.TB, m *worldmap.Map, conn transport.Conn, shared *server.SharedBufs) *server.Sequential {
	t.Helper()
	w, err := game.NewWorld(game.Config{Map: m})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	eng, err := server.NewSequential(server.Config{
		World:      w,
		Conns:      []transport.Conn{conn},
		MaxClients: 32,
		Shared:     shared,
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return eng
}

// TestLobbyRoutesAndAssigns proves the admission tier end to end: a
// named Connect reaches exactly the named match, "assign me" rotates
// over matches, an unknown name is rejected, and gameplay traffic flows
// to the right engine after admission.
func TestLobbyRoutesAndAssigns(t *testing.T) {
	m := smallMap(t)
	net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 4096})
	srvConn, err := net.Listen("srv:0")
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(Config{Workers: 2, ActiveInterval: 2 * time.Millisecond, IdleInterval: 20 * time.Millisecond})
	lobby := NewLobby(mgr, srvConn)
	defer lobby.Close()
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("m%d", i)
		if _, err := lobby.CreateMatch(name, func(conn transport.Conn) (*server.Sequential, error) {
			return newEngine(t, m, conn, mgr.Shared()), nil
		}); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}
	mgr.Start()
	defer mgr.Stop()

	mkBot := func(i int, match string) *botclient.Bot {
		bc, err := net.Listen(fmt.Sprintf("bot:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		bot, err := botclient.New(botclient.Config{
			Name:   fmt.Sprintf("bot-%d", i),
			Conn:   bc,
			Server: transport.MemAddr("srv:0"),
			Map:    m,
			Seed:   int64(i),
			Match:  match,
		})
		if err != nil {
			t.Fatal(err)
		}
		return bot
	}

	// One bot names m1 explicitly; three more ask for assignment and
	// must spread over the rotation (m0, m1, m2).
	bots := []*botclient.Bot{mkBot(0, "m1"), mkBot(1, ""), mkBot(2, ""), mkBot(3, "")}
	for i, b := range bots {
		if err := b.Connect(); err != nil {
			t.Fatalf("bot %d connect: %v", i, err)
		}
	}
	for f := 0; f < 60; f++ {
		for _, b := range bots {
			b.Step()
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := lobby.Routed(); got != 4 {
		t.Errorf("routed = %d, want 4", got)
	}

	// An unknown match name must be rejected by the lobby itself.
	rejConn, err := net.Listen("bot:rej")
	if err != nil {
		t.Fatal(err)
	}
	rej, err := botclient.New(botclient.Config{
		Name: "rej", Conn: rejConn, Server: transport.MemAddr("srv:0"),
		Map: m, Match: "nope", ConnectTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rej.Connect(); err == nil {
		t.Error("connect to unknown match succeeded, want rejection")
	}
	if lobby.Rejects() == 0 {
		t.Error("lobby counted no rejects")
	}

	lobby.Close()
	mgr.Stop()
	stats := mgr.Stats()
	counts := map[string]int{}
	var replies int64
	for _, st := range stats {
		counts[st.Name] = st.Clients
		replies += st.Replies
	}
	// m1 got the named bot plus one assigned; m0 and m2 one assigned each.
	if counts["m0"] != 1 || counts["m1"] != 2 || counts["m2"] != 1 {
		t.Errorf("client spread = %v, want m0:1 m1:2 m2:1", counts)
	}
	if replies == 0 {
		t.Error("no replies flowed through any match")
	}
}

// TestIdleMatchesShareScratch proves the memory bound the shared pool
// exists for: many idle matches ticking concurrently borrow far fewer
// frame-scratch sets than there are matches.
func TestIdleMatchesShareScratch(t *testing.T) {
	m := smallMap(t)
	const matches = 64
	mgr := NewManager(Config{Workers: 4, IdleInterval: 3 * time.Millisecond})
	net := transport.NewNetwork(transport.NetworkConfig{})
	for i := 0; i < matches; i++ {
		conn, err := net.Listen(fmt.Sprintf("m:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Add(fmt.Sprintf("idle-%d", i), newEngine(t, m, conn, mgr.Shared())); err != nil {
			t.Fatal(err)
		}
	}
	mgr.Start()
	time.Sleep(150 * time.Millisecond)
	mgr.Stop()

	ag := mgr.AggregateStats()
	if ag.Frames < matches {
		t.Fatalf("aggregate frames = %d, want at least one per match (%d)", ag.Frames, matches)
	}
	for _, st := range mgr.Stats() {
		if st.Frames == 0 {
			t.Errorf("match %s never stepped", st.Name)
		}
	}
	// Idle matches return their scratch every tick, so the pool's
	// high-water mark tracks simultaneous activity (≤ workers), not the
	// match count.
	if made := mgr.Shared().Made(); made > 8 {
		t.Errorf("scratch sets built = %d for %d idle matches; pooling is not sharing", made, matches)
	}
}

// TestPokeSchedulesPromptly proves the lobby's admission latency bound:
// a poked idle match steps well before its idle tick would have fired.
func TestPokeSchedulesPromptly(t *testing.T) {
	m := smallMap(t)
	mgr := NewManager(Config{Workers: 1, IdleInterval: time.Hour})
	net := transport.NewNetwork(transport.NetworkConfig{})
	conn, err := net.Listen("m:0")
	if err != nil {
		t.Fatal(err)
	}
	mt, err := mgr.Add("m0", newEngine(t, m, conn, mgr.Shared()))
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()
	defer mgr.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for frames(mgr, mt) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first frame never stepped")
		}
		time.Sleep(time.Millisecond)
	}
	base := frames(mgr, mt)
	mgr.Poke("m0")
	deadline = time.Now().Add(2 * time.Second)
	for frames(mgr, mt) == base {
		if time.Now().After(deadline) {
			t.Fatal("poke did not schedule a frame (idle interval is an hour)")
		}
		time.Sleep(time.Millisecond)
	}
}

func frames(m *Manager, mt *Match) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return mt.frames
}
