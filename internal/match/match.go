// Package match runs many concurrent game instances in one process on a
// shared worker pool (DESIGN.md §13).
//
// The paper parallelizes one match across threads; real deployments
// reach large populations with many 16–160 player matches per box. A
// Manager owns M server.Sequential engines in stepped mode (no per-match
// goroutines) and multiplexes their frames over a GOMAXPROCS-sized
// worker pool with deadline-ordered dispatch: active matches get their
// frame cadence, idle matches coalesce onto a slow tick and hold no warm
// buffers (server.SharedBufs). A Lobby routes client datagrams to their
// match through a transport.Mux, assigning new connections by the
// Connect datagram's Match field.
package match

import (
	"fmt"
	"sync"
	"time"

	"qserve/internal/metrics"
	"qserve/internal/server"
)

// Config parameterizes a Manager.
type Config struct {
	// Workers is the scheduler's worker-goroutine count; default
	// GOMAXPROCS. Each worker pops the earliest-deadline due match,
	// steps one frame, and requeues it.
	Workers int
	// ActiveInterval is the frame cadence of a match with connected
	// clients or inbound traffic. Default 15ms (~ the paper's 30–40ms
	// client frame, halved so two client commands never wait a full
	// server frame).
	ActiveInterval time.Duration
	// IdleInterval is the tick cadence of an empty match: world physics
	// still advances (doors close, items respawn) but nothing else runs.
	// Default 250ms.
	IdleInterval time.Duration
	// Shared is the cross-instance frame-scratch pool threaded into
	// every match's engine Config by the caller; built here when nil so
	// Manager-created deployments share one by construction.
	Shared *server.SharedBufs
	// Hooks are test seams; zero in production.
	Hooks Hooks
}

// Hooks exposes fault-injection seams for the isolation tests.
type Hooks struct {
	// PreStep runs on the scheduler worker right before a match's frame
	// steps. The eviction tests use it to panic a chosen match at a
	// known point, proving a crashing match cannot take its neighbors
	// down.
	PreStep func(name string)
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = defaultWorkers()
	}
	if c.ActiveInterval <= 0 {
		c.ActiveInterval = 15 * time.Millisecond
	}
	if c.IdleInterval <= 0 {
		c.IdleInterval = 250 * time.Millisecond
	}
	if c.Shared == nil {
		c.Shared = server.NewSharedBufs()
	}
}

// Match is one scheduled game instance.
type Match struct {
	name string
	eng  *server.Sequential
	port int // lobby mux port index; -1 when not lobby-routed

	// Scheduler state, all guarded by the Manager's mutex. A match is in
	// exactly one of three places: the deadline heap (heapIdx >= 0), a
	// worker's hands (running), or evicted. The mutex passage between a
	// worker requeueing the match and the next worker popping it is the
	// happens-before edge that lets consecutive frames of one match run
	// on different workers without further synchronization.
	heapIdx  int
	deadline time.Time
	running  bool
	evicted  bool
	poked    bool // deadline pulled to "now" while the match was running
	active   bool // last step's verdict: clients connected or traffic seen

	frames   uint64
	stepHist metrics.LatencyHist // frame step duration
	lateHist metrics.LatencyHist // dispatch lateness past the deadline
}

// Name returns the match's lobby-visible name.
func (mt *Match) Name() string { return mt.name }

// Engine returns the match's engine. Engine state (breakdowns, client
// counts) must only be read while the match cannot be stepping — in
// practice, after Manager.Stop.
func (mt *Match) Engine() *server.Sequential { return mt.eng }

// Manager owns the match set and the shared frame scheduler.
type Manager struct {
	cfg Config

	mu        sync.Mutex
	heap      []*Match
	byName    map[string]*Match
	all       []*Match // insertion order, evicted matches included
	evictions int
	stopped   bool

	kick  chan struct{}
	stopc chan struct{}
	wg    sync.WaitGroup
}

// NewManager builds a manager; call Start to launch the workers.
func NewManager(cfg Config) *Manager {
	cfg.fill()
	return &Manager{
		cfg:    cfg,
		byName: make(map[string]*Match),
		kick:   make(chan struct{}, cfg.Workers),
		stopc:  make(chan struct{}),
	}
}

// Shared returns the cross-instance buffer pool every match engine's
// Config.Shared must point at.
func (m *Manager) Shared() *server.SharedBufs { return m.cfg.Shared }

// Add registers an engine as a named match and schedules its first
// frame immediately. The engine must have been built with this
// manager's Shared pool and must not have been started; Add puts it in
// stepped mode.
func (m *Manager) Add(name string, eng *server.Sequential) (*Match, error) {
	return m.add(name, eng, -1)
}

func (m *Manager) add(name string, eng *server.Sequential, port int) (*Match, error) {
	mt := &Match{name: name, eng: eng, port: port, heapIdx: -1}
	eng.StartStepped()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil, fmt.Errorf("match: manager stopped")
	}
	if _, dup := m.byName[name]; dup {
		return nil, fmt.Errorf("match: duplicate match %q", name)
	}
	m.byName[name] = mt
	m.all = append(m.all, mt)
	mt.deadline = time.Now()
	m.heapPush(mt)
	m.kickLocked()
	return mt, nil
}

// Start launches the scheduler workers. Deadlines of matches admitted
// before Start are re-based to now and staggered across one idle
// interval: wall time spent building a large fleet must not count as
// dispatch lateness, and a synchronized idle-tick herd would otherwise
// recur every interval.
func (m *Manager) Start() {
	m.mu.Lock()
	if n := len(m.heap); n > 0 {
		now := time.Now()
		// Deadlines increase with heap-array index, so every parent still
		// precedes its children: the array stays a valid min-heap.
		for i, mt := range m.heap {
			mt.deadline = now.Add(m.cfg.IdleInterval * time.Duration(i) / time.Duration(n))
		}
	}
	m.mu.Unlock()
	for i := 0; i < m.cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
}

// Stop halts the scheduler and stops every engine. After Stop returns,
// no match is stepping and engine state is safe to read.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	close(m.stopc)
	m.wg.Wait()
	for _, mt := range m.snapshotAll() {
		mt.eng.Stop()
	}
}

// Len returns the number of live (non-evicted) matches.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byName)
}

// Evictions returns how many matches were evicted after a panic.
func (m *Manager) Evictions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}

// Poke pulls a match's next frame to "now" — the lobby calls it when it
// routes a Connect so admission doesn't wait out an idle tick.
func (m *Manager) Poke(name string) {
	m.mu.Lock()
	mt := m.byName[name]
	if mt == nil {
		m.mu.Unlock()
		return
	}
	if mt.running {
		mt.poked = true // requeue will schedule it immediately
	} else if mt.heapIdx >= 0 {
		mt.deadline = time.Now()
		m.heapFix(mt)
		m.kickLocked()
	}
	m.mu.Unlock()
}

// lookup returns the named live match (lobby routing).
func (m *Manager) lookup(name string) *Match {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byName[name]
}

func (m *Manager) snapshotAll() []*Match {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Match, len(m.all))
	copy(out, m.all)
	return out
}

// kickLocked wakes one sleeping worker; callers hold m.mu.
func (m *Manager) kickLocked() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// evict removes a panicked match from service: it is never requeued, its
// name is freed for lookups, and its engine is left untouched for post
// mortem inspection. Called by the stepping worker with m.mu held.
func (m *Manager) evictLocked(mt *Match) {
	mt.evicted = true
	delete(m.byName, mt.name)
	m.evictions++
}
