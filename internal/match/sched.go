package match

import (
	"log"
	"runtime"
	"time"
)

// The frame scheduler: a deadline-ordered min-heap of matches served by
// a fixed pool of workers. Each worker pops the earliest due match,
// steps exactly one frame, computes the next deadline from the step's
// activity verdict, and requeues. Lateness never compounds: the next
// deadline is now+interval, not deadline+interval, so a backlogged
// scheduler coalesces missed idle ticks instead of replaying them.
//
// The dispatch path — pop, step, requeue — is allocation-free in steady
// state: the heap is a preallocated slice of pointers, the histograms
// are fixed arrays, and the engines' own per-frame paths hold the
// repo-wide 0 allocs/op line. Only match admission allocates.

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

func (m *Manager) worker() {
	defer m.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		mt, wait, ok := m.next()
		if !ok {
			return
		}
		if mt != nil {
			m.step(mt)
			continue
		}
		// Nothing due: sleep until the earliest deadline (or a kick —
		// admission, Poke, or a requeue that created an earlier top).
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		if wait >= 0 {
			timer.Reset(wait)
			select {
			case <-m.stopc:
				return
			case <-m.kick:
			case <-timer.C:
			}
		} else {
			select {
			case <-m.stopc:
				return
			case <-m.kick:
			}
		}
	}
}

// next pops the earliest due match, or reports how long until one is
// due (wait < 0: heap empty). ok=false means the manager stopped.
func (m *Manager) next() (mt *Match, wait time.Duration, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil, 0, false
	}
	if len(m.heap) == 0 {
		return nil, -1, true
	}
	top := m.heap[0]
	now := time.Now()
	if d := top.deadline.Sub(now); d > 0 {
		return nil, d, true
	}
	m.heapPop()
	top.running = true
	top.lateHist.Record(now.Sub(top.deadline).Seconds())
	return top, 0, true
}

// step runs one frame of a popped match and requeues it. A panic that
// escapes the engine's own containment (which already absorbs request
// and reply phase panics per client) condemns only this match: it is
// evicted, every other match keeps its cadence.
func (m *Manager) step(mt *Match) {
	t0 := time.Now()
	active, panicked := m.safeStep(mt)
	dur := time.Since(t0)

	m.mu.Lock()
	mt.running = false
	mt.frames++
	mt.active = active
	mt.stepHist.Record(dur.Seconds())
	if panicked {
		m.evictLocked(mt)
		m.mu.Unlock()
		return
	}
	interval := m.cfg.IdleInterval
	if active {
		interval = m.cfg.ActiveInterval
	}
	if mt.poked {
		mt.poked = false
		interval = 0
	}
	mt.deadline = time.Now().Add(interval)
	m.heapPush(mt)
	if m.heap[0] == mt && len(m.heap) > 1 {
		// We created a new earliest deadline; a worker may be sleeping
		// toward a later one.
		m.kickLocked()
	}
	m.mu.Unlock()
}

func (m *Manager) safeStep(mt *Match) (active, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			log.Printf("match: %q panicked mid-frame, evicting (others unaffected): %v", mt.name, r)
		}
	}()
	if h := m.cfg.Hooks.PreStep; h != nil {
		h(mt.name)
	}
	return mt.eng.StepFrame(), false
}

// dispatchOne is a worker's inner loop body without the sleeping: pop
// the earliest due match, step it, requeue. It returns false when
// nothing is due right now (or the manager stopped). The benchmark and
// allocation gates drive the scheduler through this, so they measure
// exactly the per-frame dispatch path a worker executes.
func (m *Manager) dispatchOne() bool {
	mt, _, ok := m.next()
	if !ok || mt == nil {
		return false
	}
	m.step(mt)
	return true
}

// Deadline min-heap over m.heap, hand-rolled (no container/heap
// interface) so dispatch stays monomorphic and allocation-free.
// Callers hold m.mu.

func (m *Manager) heapPush(mt *Match) {
	mt.heapIdx = len(m.heap)
	m.heap = append(m.heap, mt)
	m.siftUp(mt.heapIdx)
}

func (m *Manager) heapPop() *Match {
	top := m.heap[0]
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	m.heap[0].heapIdx = 0
	m.heap[last] = nil
	m.heap = m.heap[:last]
	if last > 0 {
		m.siftDown(0)
	}
	top.heapIdx = -1
	return top
}

// heapFix restores heap order after mt's deadline changed in place.
func (m *Manager) heapFix(mt *Match) {
	m.siftUp(mt.heapIdx)
	m.siftDown(mt.heapIdx)
}

func (m *Manager) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !m.heap[i].deadline.Before(m.heap[p].deadline) {
			return
		}
		m.heapSwap(i, p)
		i = p
	}
}

func (m *Manager) siftDown(i int) {
	n := len(m.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && m.heap[l].deadline.Before(m.heap[min].deadline) {
			min = l
		}
		if r < n && m.heap[r].deadline.Before(m.heap[min].deadline) {
			min = r
		}
		if min == i {
			return
		}
		m.heapSwap(i, min)
		i = min
	}
}

func (m *Manager) heapSwap(i, j int) {
	m.heap[i], m.heap[j] = m.heap[j], m.heap[i]
	m.heap[i].heapIdx = i
	m.heap[j].heapIdx = j
}
