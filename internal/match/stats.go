package match

import (
	"qserve/internal/metrics"
)

// Stats is one match's rollup: the scheduler's view (frames dispatched,
// step-duration and lateness percentiles) plus the engine's own
// execution-time breakdown summed over its threads.
type Stats struct {
	Name    string
	Evicted bool
	Active  bool // clients connected or traffic seen on the last frame

	Frames   uint64 // frames the scheduler dispatched
	Clients  int
	Replies  int64
	BytesIn  int64
	BytesOut int64

	StepP50Ms float64 // frame step duration percentiles
	StepP99Ms float64
	LateP99Ms float64 // dispatch lateness past the deadline

	Breakdown metrics.Breakdown
}

// Aggregate is the manager-level rollup across every match.
type Aggregate struct {
	Matches int // matches ever admitted
	Live    int
	ActiveM int
	Evicted int

	Frames  uint64
	Replies int64
	Clients int

	StepHist metrics.LatencyHist
	LateHist metrics.LatencyHist

	Breakdown metrics.Breakdown

	// ScratchMade is the shared pool's high-water mark: how many frame
	// scratch sets the whole process ever needed simultaneously.
	ScratchMade int
}

// Stats returns per-match rollups in admission order, evicted matches
// included. Engine-derived fields (clients, replies, breakdowns) are
// only stable once no match can be stepping — call after Stop.
func (m *Manager) Stats() []Stats {
	m.mu.Lock()
	matches := make([]*Match, len(m.all))
	copy(matches, m.all)
	m.mu.Unlock()

	out := make([]Stats, 0, len(matches))
	for _, mt := range matches {
		m.mu.Lock()
		st := Stats{
			Name:      mt.name,
			Evicted:   mt.evicted,
			Active:    mt.active,
			Frames:    mt.frames,
			StepP50Ms: mt.stepHist.P50(),
			StepP99Ms: mt.stepHist.P99(),
			LateP99Ms: mt.lateHist.P99(),
		}
		m.mu.Unlock()
		st.Clients = mt.eng.NumClients()
		st.Replies = mt.eng.Replies()
		st.BytesIn = mt.eng.BytesIn()
		st.BytesOut = mt.eng.BytesOut()
		for _, bd := range mt.eng.Breakdowns() {
			st.Breakdown.Add(&bd)
		}
		out = append(out, st)
	}
	return out
}

// AggregateStats combines every match into one manager-level view. Same
// stability caveat as Stats: call after Stop.
func (m *Manager) AggregateStats() Aggregate {
	var ag Aggregate
	m.mu.Lock()
	matches := make([]*Match, len(m.all))
	copy(matches, m.all)
	for _, mt := range matches {
		ag.Matches++
		if !mt.evicted {
			ag.Live++
		} else {
			ag.Evicted++
		}
		if mt.active {
			ag.ActiveM++
		}
		ag.Frames += mt.frames
		ag.StepHist.Merge(&mt.stepHist)
		ag.LateHist.Merge(&mt.lateHist)
	}
	m.mu.Unlock()
	for _, mt := range matches {
		ag.Replies += mt.eng.Replies()
		ag.Clients += mt.eng.NumClients()
		for _, bd := range mt.eng.Breakdowns() {
			ag.Breakdown.Add(&bd)
		}
	}
	ag.ScratchMade = m.cfg.Shared.Made()
	return ag
}

// ActiveStepHist merges the step-duration histograms of the matches
// that were active on their last frame (clients connected or traffic
// seen) — the tail the instancing headline compares between fleet
// shapes, undiluted by near-free idle ticks.
func (m *Manager) ActiveStepHist() metrics.LatencyHist {
	var h metrics.LatencyHist
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mt := range m.all {
		if mt.active {
			h.Merge(&mt.stepHist)
		}
	}
	return h
}

// StepHist returns a copy of one match's step-duration histogram
// (scheduler-side state, safe while running).
func (mt *Match) StepHist(m *Manager) metrics.LatencyHist {
	m.mu.Lock()
	defer m.mu.Unlock()
	return mt.stepHist
}
