// Package botclient implements the automatic players used to load the
// server: "To automate the benchmarking procedure we replace human with
// automatic players" (§4, following the methodology of the authors'
// benchmarking paper). A bot connects over the real protocol, navigates
// the map's waypoint graph, fights other players it can see, sends one
// move command per client frame (30–40ms), and measures response time —
// the interval between sending a request and receiving the matching
// reply.
package botclient

import (
	"fmt"
	"math/rand"
	"time"

	"qserve/internal/geom"
	"qserve/internal/metrics"
	"qserve/internal/protocol"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// Config parameterizes one bot.
type Config struct {
	Name string
	// Conn is the bot's own endpoint.
	Conn transport.Conn
	// Server is the address connection requests go to.
	Server transport.Addr
	// Map provides the waypoint graph for navigation.
	Map *worldmap.Map
	// FrameMs is the client frame duration; default 33 (30 fps).
	FrameMs int
	// Seed drives the bot's behavioural randomness.
	Seed int64
	// FireProb is the per-frame probability of firing when an enemy is
	// visible. Default 0.15.
	FireProb float64
	// ConnectTimeout bounds the connection handshake. Default 5s.
	ConnectTimeout time.Duration
	// Match names the instance to join on a match-manager server
	// (DESIGN.md §13). Empty asks the lobby to assign one; solo servers
	// ignore it.
	Match string
}

// Bot is one automatic player.
type Bot struct {
	cfg    Config
	rng    *rand.Rand
	conn   transport.Conn
	server transport.Addr
	nav    *Navigator

	clientID uint16
	entityID int32

	seq       uint32
	lastFrame uint32         // newest server frame seen, echoed as Move.Ack
	sendTimes [256]time.Time // ring keyed by seq&0xFF
	pos       geom.Vec3
	yaw       float64
	health    int16
	enemies   []protocol.EntityState
	allStates []protocol.EntityState // reconstructed entity table
	// tableTag is the delta-continuity tag the entity table corresponds
	// to: the frame after the snapshot that produced it. A snapshot whose
	// BaseFrame differs was built against a baseline this bot never saw
	// (a lost snapshot) — its delta must be discarded and a resync
	// requested. Tag 0 means "no table yet": the next snapshot must carry
	// BaseFrame 0 (full state).
	tableTag   uint32
	lastResync time.Time

	// Stats observed by the bot.
	Resp       metrics.ResponseStats
	Snapshots  int64
	Kills      int64 // kill events where this bot was the actor
	Deaths     int64
	Resyncs    int64   // deltas discarded for baseline discontinuity
	Moved      float64 // total distance travelled, a liveness check
	lastOrigin geom.Vec3

	writer  protocol.Writer
	recvBuf []byte
}

// New creates a bot; call Connect then Run.
func New(cfg Config) (*Bot, error) {
	if cfg.Conn == nil || cfg.Server == nil || cfg.Map == nil {
		return nil, fmt.Errorf("botclient: conn, server, and map are required")
	}
	if cfg.FrameMs <= 0 {
		cfg.FrameMs = 33
	}
	if cfg.FireProb == 0 {
		cfg.FireProb = 0.15
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 5 * time.Second
	}
	return &Bot{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		conn:   cfg.Conn,
		server: cfg.Server,
		nav:    NewNavigator(cfg.Map, rand.New(rand.NewSource(cfg.Seed^0x5eed))),
		// Receive buffer above MaxDatagram: tolerate oversized snapshots
		// from servers with bigger MTU budgets.
		recvBuf: make([]byte, 4*transport.MaxDatagram),
	}, nil
}

// Connect performs the join handshake, retrying the request until the
// server accepts or the timeout expires.
func (b *Bot) Connect() error {
	deadline := time.Now().Add(b.cfg.ConnectTimeout)
	for time.Now().Before(deadline) {
		b.send(b.server, &protocol.Connect{
			Name:        b.cfg.Name,
			FrameMs:     uint8(b.cfg.FrameMs),
			ProtocolVer: protocol.Version,
			Match:       b.cfg.Match,
		})
		limit := time.Now().Add(200 * time.Millisecond)
		for time.Now().Before(limit) {
			n, _, err := b.conn.Recv(b.recvBuf, time.Until(limit))
			if err != nil {
				break
			}
			msg, err := protocol.Decode(b.recvBuf[:n])
			if err != nil {
				continue
			}
			switch m := msg.(type) {
			case *protocol.Accept:
				b.clientID = m.ClientID
				b.entityID = m.EntityID
				addr, err := transport.ResolveLike(b.conn, m.Addr)
				if err != nil {
					return fmt.Errorf("botclient: bad assigned addr %q: %w", m.Addr, err)
				}
				b.server = addr
				return nil
			case *protocol.Reject:
				return fmt.Errorf("botclient: rejected: %s", m.Reason)
			}
		}
	}
	return fmt.Errorf("botclient: connect timeout")
}

// Run drives the bot until the stop channel closes, then disconnects.
func (b *Bot) Run(stop <-chan struct{}) {
	frame := time.Duration(b.cfg.FrameMs) * time.Millisecond
	ticker := time.NewTicker(frame)
	defer ticker.Stop()
	start := time.Now()
	defer func() {
		b.Resp.DurationS = time.Since(start).Seconds()
		b.send(b.server, &protocol.Disconnect{})
	}()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		b.drainReplies()
		b.sendMove()
	}
}

// Step performs one client frame synchronously (for tests and
// deterministic drivers): drain replies, then send a move.
func (b *Bot) Step() {
	b.drainReplies()
	b.sendMove()
}

// Drain consumes queued replies without sending a move — the final
// settle step of tests that must observe a quiescent server.
func (b *Bot) Drain() {
	b.drainReplies()
}

func (b *Bot) sendMove() {
	cmd := b.decideMove()
	b.seq++
	b.sendTimes[b.seq&0xFF] = time.Now()
	b.send(b.server, &protocol.Move{Seq: b.seq, Ack: b.lastFrame, Cmd: cmd})
}

// decideMove is the bot brain: steer along the waypoint path, face
// enemies, and fire opportunistically.
func (b *Bot) decideMove() protocol.MoveCmd {
	var cmd protocol.MoveCmd
	cmd.Msec = uint8(b.cfg.FrameMs)
	cmd.Forward = 320

	target := b.nav.Steer(b.pos)
	wishYaw := geom.VecToAngles(target.Sub(b.pos)).Y

	// Combat: face the nearest visible enemy and fire sometimes.
	if len(b.enemies) > 0 {
		nearest := b.enemies[0]
		bestD := b.pos.DistSq(nearest.Origin())
		for _, e := range b.enemies[1:] {
			if d := b.pos.DistSq(e.Origin()); d < bestD {
				bestD = d
				nearest = e
			}
		}
		aim := nearest.Origin().Sub(b.pos)
		if aim.Len() < 700 {
			wishYaw = geom.VecToAngles(aim).Y
			if b.rng.Float64() < b.cfg.FireProb {
				cmd.Buttons |= protocol.BtnFire
			}
			if b.rng.Float64() < 0.3 {
				cmd.Impulse = uint8(1 + b.rng.Intn(2)) // switch weapons
			}
		}
	}
	// Smooth the turn.
	b.yaw += geom.AngleDelta(b.yaw, wishYaw) * 0.5
	b.yaw = geom.NormalizeAngle(b.yaw)
	cmd.Yaw = protocol.AngleToWire(b.yaw)
	if b.rng.Float64() < 0.02 {
		cmd.Buttons |= protocol.BtnJump
	}
	return cmd
}

// drainReplies consumes every queued server message, updating position,
// visible enemies, and response-time statistics.
func (b *Bot) drainReplies() {
	for {
		n, _, err := b.conn.Recv(b.recvBuf, 0)
		if err != nil {
			return
		}
		msg, err := protocol.Decode(b.recvBuf[:n])
		if err != nil {
			continue
		}
		snap, ok := msg.(*protocol.Snapshot)
		if !ok {
			continue
		}
		b.Snapshots++
		b.Resp.Replies++
		b.lastFrame = snap.Frame
		if lag := b.seq - snap.AckSeq; lag < 256 {
			if t := b.sendTimes[snap.AckSeq&0xFF]; !t.IsZero() {
				b.Resp.Record(time.Since(t).Seconds())
			}
		}
		b.Moved += b.pos.Dist(snap.You.Origin)
		b.pos = snap.You.Origin
		b.health = snap.You.Health
		b.updateEnemies(snap)
		for _, ev := range snap.Events {
			switch {
			case ev.Kind == 1 && int32(ev.Actor) == b.entityID: // EvKill
				b.Kills++
			case ev.Kind == 1 && int32(ev.Subject) == b.entityID:
				b.Deaths++
			}
		}
	}
}

// updateEnemies applies the snapshot's entity delta to the bot's view of
// other players, enforcing delta continuity via the BaseFrame tag.
func (b *Bot) updateEnemies(snap *protocol.Snapshot) {
	switch {
	case snap.BaseFrame == 0:
		// Full state: the server's baseline was empty, so the delta stands
		// alone. Reset the table before applying.
		b.allStates = b.allStates[:0]
	case snap.BaseFrame != b.tableTag:
		// The delta was computed against a snapshot this bot never
		// received (lost on the wire). Applying it would corrupt the
		// table; discard it and ask the server for full state.
		b.resync()
		return
	}
	updated, err := protocol.ApplyDelta(b.allStates, snap.Delta)
	if err != nil {
		// Delta stream confused despite a matching tag (corruption that
		// survived decode): resync from scratch.
		b.allStates = b.allStates[:0]
		b.tableTag = 0
		b.resync()
		return
	}
	b.allStates = updated
	b.tableTag = snap.Frame + 1
	b.enemies = b.enemies[:0]
	for _, s := range b.allStates {
		if s.Class == 1 && int32(s.ID) != b.entityID { // ClassPlayer
			b.enemies = append(b.enemies, s)
		}
	}
}

// resync asks the server to restart the delta stream by re-sending the
// connection request: the server re-accepts idempotently and flags the
// bot's baseline for reset, so the next snapshot carries full state
// (BaseFrame 0). Rate-limited — under sustained loss one resync per
// round-trip window is enough.
func (b *Bot) resync() {
	b.Resyncs++
	now := time.Now()
	if now.Sub(b.lastResync) < 250*time.Millisecond {
		return
	}
	b.lastResync = now
	b.send(b.server, &protocol.Connect{
		Name:        b.cfg.Name,
		FrameMs:     uint8(b.cfg.FrameMs),
		ProtocolVer: protocol.Version,
		Match:       b.cfg.Match,
	})
}

// EntityTable returns the bot's reconstructed entity table and its
// continuity tag (for end-state consistency checks in tests).
func (b *Bot) EntityTable() ([]protocol.EntityState, uint32) {
	return b.allStates, b.tableTag
}

func (b *Bot) send(to transport.Addr, msg any) {
	b.writer.Reset()
	if err := protocol.Encode(&b.writer, msg); err != nil {
		return
	}
	_ = b.conn.Send(to, b.writer.Bytes())
}

// Pos returns the bot's last known (server-confirmed) position.
func (b *Bot) Pos() geom.Vec3 { return b.pos }

// EntityID returns the server-assigned entity ID.
func (b *Bot) EntityID() int32 { return b.entityID }

// ClientID returns the server-assigned client ID (valid after Connect).
func (b *Bot) ClientID() uint16 { return b.clientID }
