package botclient

import (
	"math/rand"
	"testing"

	"qserve/internal/geom"
	"qserve/internal/protocol"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

func testMap() *worldmap.Map {
	return worldmap.MustGenerate(worldmap.DefaultConfig())
}

func TestNavigatorProducesReachableTargets(t *testing.T) {
	m := testMap()
	nav := NewNavigator(m, rand.New(rand.NewSource(3)))
	pos := m.Waypoints[0].Pos
	for i := 0; i < 500; i++ {
		target := nav.Steer(pos)
		if !m.Bounds.Contains(target) {
			t.Fatalf("step %d: target %v outside world", i, target)
		}
		// Walk 40 units toward the target, as a moving bot would.
		d := target.Sub(pos)
		if d.Flat().Len() > 1 {
			pos = pos.Add(d.Flat().Norm().Scale(40))
		}
	}
}

func TestNavigatorPathFollowsLinks(t *testing.T) {
	m := testMap()
	nav := NewNavigator(m, rand.New(rand.NewSource(5)))
	nav.plan(m.Waypoints[0].Pos)
	if len(nav.path) == 0 {
		t.Fatal("no path planned")
	}
	prev := nav.nearestWaypoint(m.Waypoints[0].Pos)
	for _, wp := range nav.path {
		linked := false
		for _, l := range m.Waypoints[prev].Links {
			if l == wp {
				linked = true
				break
			}
		}
		if !linked {
			t.Fatalf("path hop %d -> %d not a graph edge", prev, wp)
		}
		prev = wp
	}
	// Path ends at the goal.
	if prev != nav.goal {
		t.Errorf("path ends at %d, goal %d", prev, nav.goal)
	}
}

func TestNavigatorStuckReplans(t *testing.T) {
	m := testMap()
	nav := NewNavigator(m, rand.New(rand.NewSource(7)))
	pos := m.Waypoints[0].Pos
	first := nav.Steer(pos)
	// Never move: after enough no-progress decisions the plan changes.
	changed := false
	for i := 0; i < 200; i++ {
		if got := nav.Steer(pos); got != first {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("stuck bot never re-planned")
	}
}

func TestNearestWaypoint(t *testing.T) {
	m := testMap()
	nav := NewNavigator(m, rand.New(rand.NewSource(9)))
	for i := 0; i < 20; i++ {
		wp := m.Waypoints[i%len(m.Waypoints)]
		got := nav.nearestWaypoint(wp.Pos.Add(geom.V(3, -2, 0)))
		if m.Waypoints[got].Pos.Flat().Dist(wp.Pos.Flat()) > 1e-6 &&
			got != wp.ID {
			// Another waypoint may legitimately be equally close only if
			// it shares the position; otherwise this is a bug.
			t.Fatalf("nearest to wp %d = %d", wp.ID, got)
		}
	}
}

func TestBotConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	m := testMap()
	net := transport.NewNetwork(transport.NetworkConfig{})
	c, _ := net.Listen("")
	b, err := New(Config{Name: "x", Conn: c, Server: transport.MemAddr("srv"), Map: m})
	if err != nil {
		t.Fatal(err)
	}
	if b.cfg.FrameMs != 33 || b.cfg.FireProb != 0.15 {
		t.Errorf("defaults not applied: %+v", b.cfg)
	}
}

func TestBotConnectTimeoutAgainstSilentServer(t *testing.T) {
	m := testMap()
	net := transport.NewNetwork(transport.NetworkConfig{})
	c, _ := net.Listen("")
	// A listener that never answers.
	silent, _ := net.Listen("silent")
	_ = silent
	b, _ := New(Config{
		Name: "x", Conn: c, Server: transport.MemAddr("silent"), Map: m,
		ConnectTimeout: 150 * 1e6, // 150ms
	})
	if err := b.Connect(); err == nil {
		t.Error("connect to silent server succeeded")
	}
}

func TestBotDecideMoveBasics(t *testing.T) {
	m := testMap()
	net := transport.NewNetwork(transport.NetworkConfig{})
	c, _ := net.Listen("")
	b, _ := New(Config{Name: "x", Conn: c, Server: transport.MemAddr("s"), Map: m, Seed: 3})
	b.pos = m.Waypoints[0].Pos

	cmd := b.decideMove()
	if cmd.Forward == 0 {
		t.Error("bot does not move forward")
	}
	if cmd.Msec != 33 {
		t.Errorf("msec = %d", cmd.Msec)
	}

	// With a nearby enemy the bot eventually fires.
	var enemy protocol.EntityState
	enemy.ID = 99
	enemy.Class = 1
	enemy.SetOrigin(b.pos.Add(geom.V(100, 0, 0)))
	b.enemies = []protocol.EntityState{enemy}
	fired := false
	for i := 0; i < 200; i++ {
		if b.decideMove().Buttons&protocol.BtnFire != 0 {
			fired = true
			break
		}
	}
	if !fired {
		t.Error("bot never fires at a visible enemy")
	}
}
