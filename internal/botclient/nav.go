package botclient

import (
	"math/rand"

	"qserve/internal/geom"
	"qserve/internal/worldmap"
)

// navigator steers a bot along the map's waypoint graph: pick a random
// goal waypoint, BFS a path to it, walk the path node by node, pick a new
// goal on arrival. This keeps bots moving through doors and rooms the way
// human deathmatch players roam a map.
type Navigator struct {
	m    *worldmap.Map
	rng  *rand.Rand
	path []int // waypoint indices, consumed from the front
	goal int

	// stuck detection: if the bot makes no progress toward the next
	// waypoint for several decisions, re-plan.
	lastDist  float64
	noProgess int
}

func NewNavigator(m *worldmap.Map, rng *rand.Rand) *Navigator {
	return &Navigator{m: m, rng: rng, goal: -1, lastDist: 1e18}
}

// steer returns the world position the bot should move toward from pos.
func (n *Navigator) Steer(pos geom.Vec3) geom.Vec3 {
	const arrive = 56.0
	if len(n.path) == 0 {
		n.plan(pos)
	}
	if len(n.path) == 0 {
		return pos.Add(geom.V(1, 0, 0)) // degenerate graph: just walk
	}
	next := n.m.Waypoints[n.path[0]].Pos
	d := pos.Flat().Dist(next.Flat())
	if d < arrive {
		n.path = n.path[1:]
		n.lastDist = 1e18
		n.noProgess = 0
		if len(n.path) == 0 {
			n.plan(pos)
			if len(n.path) == 0 {
				return pos.Add(geom.V(1, 0, 0))
			}
		}
		next = n.m.Waypoints[n.path[0]].Pos
	}
	// Stuck detection.
	if d >= n.lastDist-0.5 {
		n.noProgess++
		if n.noProgess > 45 { // ~1.5s of client frames
			n.plan(pos)
			n.noProgess = 0
			n.lastDist = 1e18
			if len(n.path) > 0 {
				next = n.m.Waypoints[n.path[0]].Pos
			}
		}
	} else {
		n.noProgess = 0
	}
	n.lastDist = d
	return next
}

// plan BFSes from the waypoint nearest pos to a random goal.
func (n *Navigator) plan(pos geom.Vec3) {
	if len(n.m.Waypoints) == 0 {
		n.path = nil
		return
	}
	start := n.nearestWaypoint(pos)
	goal := n.rng.Intn(len(n.m.Waypoints))
	if goal == start {
		goal = (goal + 1) % len(n.m.Waypoints)
	}
	n.goal = goal

	prev := make([]int, len(n.m.Waypoints))
	for i := range prev {
		prev[i] = -1
	}
	prev[start] = start
	queue := []int{start}
	for len(queue) > 0 && prev[goal] == -1 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range n.m.Waypoints[cur].Links {
			if prev[nb] == -1 {
				prev[nb] = cur
				queue = append(queue, nb)
			}
		}
	}
	if prev[goal] == -1 {
		// Unreachable (should not happen on generated maps): wander to a
		// random neighbor.
		n.path = append(n.path[:0], n.m.Waypoints[start].Links...)
		return
	}
	// Reconstruct.
	var rev []int
	for at := goal; at != start; at = prev[at] {
		rev = append(rev, at)
	}
	n.path = n.path[:0]
	for i := len(rev) - 1; i >= 0; i-- {
		n.path = append(n.path, rev[i])
	}
}

func (n *Navigator) nearestWaypoint(pos geom.Vec3) int {
	best, bestD := 0, 1e18
	for i := range n.m.Waypoints {
		if d := pos.Flat().DistSq(n.m.Waypoints[i].Pos.Flat()); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
