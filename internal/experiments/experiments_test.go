package experiments

import (
	"strings"
	"testing"

	"qserve/internal/locking"
	"qserve/internal/simserver"
)

// quickOpts keeps unit-test sweeps fast; the statistics are stationary
// so short virtual runs preserve the shapes asserted below.
func quickOpts() Options {
	return Options{DurationS: 2, Seed: 3}
}

func TestTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Table 1", "Xeon", "4 x 2-way", "areanodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestStructuralFigures(t *testing.T) {
	for name, fn := range map[string]func(Options) (string, error){
		"fig1": Fig1, "fig2": Fig2, "fig3": Fig3,
	} {
		out, err := fn(quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 50 {
			t.Errorf("%s output suspiciously short:\n%s", name, out)
		}
	}
}

func TestFig4OverheadShape(t *testing.T) {
	o := quickOpts()
	o.DurationS = 3
	out, err := Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "seq/64") || !strings.Contains(out, "1T/128") {
		t.Errorf("fig4 rows missing:\n%s", out)
	}
	// Quantitative shape: the 1T parallel version must charge lock time,
	// the sequential must not.
	seq, err := run(baseConfig(o, 128, 1, true, nil))
	if err != nil {
		t.Fatal(err)
	}
	par, err := run(baseConfig(o, 128, 1, false, locking.Conservative{}))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Avg.Ns[1] != 0 { // CompLock
		t.Error("sequential charged lock time")
	}
	if par.Avg.Ns[1] == 0 {
		t.Error("1T parallel charged no lock time")
	}
	// Single-thread overhead is positive and material (Fig 4a: <5% at 64
	// players growing to ~15% of total at 128; per-request it is a
	// roughly constant inflation of request processing).
	ovh := func(players int) float64 {
		s, err := run(baseConfig(o, players, 1, true, nil))
		if err != nil {
			t.Fatal(err)
		}
		p, err := run(baseConfig(o, players, 1, false, locking.Conservative{}))
		if err != nil {
			t.Fatal(err)
		}
		return RequestOverhead(s, p)
	}
	if o64, o128 := ovh(64), ovh(128); o64 <= 0 || o128 <= 0 {
		t.Errorf("overhead not positive: 64p=%.3f 128p=%.3f", o64, o128)
	}
}

func TestFig7bDistinctLeavesDecreasing(t *testing.T) {
	o := quickOpts()
	out, err := Fig7b(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "63") || !strings.Contains(out, "31") {
		t.Errorf("fig7b missing areanode counts:\n%s", out)
	}
	// The fraction of the world locked per request must fall as the
	// tree grows (the paper's "decreases rapidly").
	frac := func(depth int) float64 {
		cfg := baseConfig(o, 96, 4, false, locking.Optimized{})
		cfg.AreanodeDepth = depth
		res, err := run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Locks.AvgDistinctLeavesPerRequest() / float64(res.NumLeaves)
	}
	f1, f4 := frac(1), frac(4)
	if f4 >= f1 {
		t.Errorf("locked world fraction not decreasing: depth1=%.2f depth4=%.2f", f1, f4)
	}
}

func TestFig7cSharingGrowsWithPlayers(t *testing.T) {
	o := quickOpts()
	share := func(players int) float64 {
		res, err := run(baseConfig(o, players, 4, false, locking.Conservative{}))
		if err != nil {
			t.Fatal(err)
		}
		return res.FrameLog.SharedLeafFraction()
	}
	lo, hi := share(64), share(160)
	if hi <= lo {
		t.Errorf("leaf sharing not growing with players: 64p=%.2f 160p=%.2f", lo, hi)
	}
	if hi < 0.5 {
		t.Errorf("near saturation sharing should be high, got %.2f", hi)
	}
}

func TestOptimizedBeatsConservativeAtScale(t *testing.T) {
	o := quickOpts()
	o.DurationS = 3
	cons, err := run(baseConfig(o, 160, 8, false, locking.Conservative{}))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := run(baseConfig(o, 160, 8, false, locking.Optimized{}))
	if err != nil {
		t.Fatal(err)
	}
	if opt.ResponseTimeMs() >= cons.ResponseTimeMs() {
		t.Errorf("optimized response %.1fms >= conservative %.1fms",
			opt.ResponseTimeMs(), cons.ResponseTimeMs())
	}
	// Lock time cut by more than a third (paper: "by more than half").
	consLock := cons.Avg.Percent(1)
	optLock := opt.Avg.Percent(1)
	if optLock > consLock*0.67 {
		t.Errorf("optimized lock share %.1f%% vs conservative %.1f%%: not reduced enough",
			optLock, consLock)
	}
}

func TestImbalanceAndCoverageRender(t *testing.T) {
	o := quickOpts()
	out, err := Imbalance(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "req/thread/frame") {
		t.Errorf("imbalance table malformed:\n%s", out)
	}
	out, err = Coverage(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "touched leaves") {
		t.Errorf("coverage table malformed:\n%s", out)
	}
	out, err = WaitAnalysis(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total wait") {
		t.Errorf("wait table malformed:\n%s", out)
	}
}

func TestRequestsPerThreadPerFrameDecreasesWithThreads(t *testing.T) {
	o := quickOpts()
	rpf := func(threads int) float64 {
		res, err := run(baseConfig(o, 128, threads, false, locking.Conservative{}))
		if err != nil {
			t.Fatal(err)
		}
		return res.FrameLog.RequestsPerThreadPerFrame()
	}
	r2, r8 := rpf(2), rpf(8)
	// Paper §5.2: 4, 2.5, 1.5 requests per thread per frame for 2/4/8
	// threads at 128 players: monotonically decreasing.
	if r8 >= r2 {
		t.Errorf("requests/thread/frame not decreasing: 2T=%.2f 8T=%.2f", r2, r8)
	}
}

func TestPaperMapConfig(t *testing.T) {
	cfg := PaperMapConfig(9)
	if cfg.Rows != 4 || cfg.Cols != 4 || cfg.Name != "gen-dm16" {
		t.Errorf("map config = %+v", cfg)
	}
	// Distinct seeds give distinct maps, same seed identical.
	if PaperMapConfig(9) != cfg {
		t.Error("map config not deterministic")
	}
}

func TestBaseConfigDefaults(t *testing.T) {
	o := quickOpts()
	cfg := baseConfig(o, 64, 2, false, locking.Optimized{})
	if cfg.Players != 64 || cfg.Threads != 2 || cfg.Sequential {
		t.Errorf("base config = %+v", cfg)
	}
	var s simserver.Config
	_ = s
}

func TestRenderTimeline(t *testing.T) {
	o := quickOpts()
	cfg := baseConfig(o, 96, 4, false, locking.Conservative{})
	cfg.TraceFrames = 10
	res, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	out := RenderTimeline(res.Trace, res.Threads, 80)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+res.Threads {
		t.Fatalf("timeline has %d lines:\n%s", len(lines), out)
	}
	// Each thread row must contain at least one phase glyph.
	for _, row := range lines[1:] {
		if !strings.ContainsAny(row, "WrbRoe.") {
			t.Errorf("empty timeline row: %q", row)
		}
	}
	if RenderTimeline(nil, 4, 80) != "(no trace)\n" {
		t.Error("empty trace not handled")
	}
}
