package experiments

import (
	"strings"
	"testing"

	"qserve/internal/metrics"
	"qserve/internal/simserver"
	"qserve/internal/worldmap"
)

func TestMapStudyRenders(t *testing.T) {
	o := quickOpts()
	out, err := MapStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"maze 6x6", "maze 4x4", "arena", "reply%"} {
		if !strings.Contains(out, want) {
			t.Errorf("map study missing %q:\n%s", want, out)
		}
	}
}

// TestVisibilityDrivesReplyShare asserts the paper's §4.1 claim between
// the two maze maps: the map whose rooms see more of the world spends a
// larger share of its time in reply processing.
func TestVisibilityDrivesReplyShare(t *testing.T) {
	o := quickOpts()
	o.DurationS = 3
	replyShare := func(m *worldmap.Map) (visFrac, reply float64) {
		stats := m.ComputeStats()
		res, err := run(simserver.Config{
			Map: m, Players: 128, Threads: 1, Sequential: true,
			DurationS: o.DurationS, Seed: o.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.AvgVisibleRooms / float64(stats.Rooms),
			res.Avg.Percent(metrics.CompReply)
	}

	lowCfg := worldmap.DefaultConfig()
	lowCfg.Seed = o.Seed + 1
	low, err := worldmap.Generate(lowCfg)
	if err != nil {
		t.Fatal(err)
	}
	high, err := worldmap.Generate(PaperMapConfig(o.Seed))
	if err != nil {
		t.Fatal(err)
	}

	lowVis, lowReply := replyShare(low)
	highVis, highReply := replyShare(high)
	if highVis <= lowVis {
		t.Skipf("map seeds produced unexpected visibility ordering: %.2f vs %.2f", lowVis, highVis)
	}
	if highReply <= lowReply {
		t.Errorf("higher-visibility map has lower reply share: %.1f%% (vis %.2f) vs %.1f%% (vis %.2f)",
			highReply, highVis, lowReply, lowVis)
	}
}

func TestArenaRunsOnSimServer(t *testing.T) {
	arena, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := run(simserver.Config{
		Map: arena, Players: 24, Threads: 2, DurationS: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resp.Replies == 0 {
		t.Fatal("arena run produced no replies")
	}
	// Everyone is mutually visible: snapshots are rich, so reply cost
	// per client must exceed the maze's at the same light load.
	if res.Avg.Percent(metrics.CompReply) <= 0 {
		t.Error("no reply time in arena run")
	}
}
