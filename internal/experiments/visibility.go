package experiments

import (
	"fmt"

	"qserve/internal/metrics"
	"qserve/internal/simserver"
	"qserve/internal/worldmap"
)

// Visibility is the A/B study for frame-coherent interest management:
// the naive reply phase re-scans and re-encodes the whole entity table
// for every client (O(clients × entities) per frame), while the indexed
// reply phase builds one shared visibility index + entity-state cache
// per frame and assembles each client's snapshot as a merge of
// precomputed spans. Wire output is byte-identical (the golden and
// property tests prove it); this study measures what the inversion does
// to the virtual-time economics across player count × map visibility —
// the reply phase dominates frame time at high player counts (§4), and
// high-visibility maps inflate it further, which is exactly where the
// shared cache pays off most.
func Visibility(o Options) (string, error) {
	o.fill()
	type variant struct {
		label string
		build func() (*worldmap.Map, error)
	}
	variants := []variant{
		{"maze 6x6 (low visibility)", func() (*worldmap.Map, error) {
			cfg := worldmap.DefaultConfig()
			cfg.Seed = o.Seed + 1
			return worldmap.Generate(cfg)
		}},
		{"maze 4x4 (paper map)", func() (*worldmap.Map, error) {
			cfg := PaperMapConfig(o.Seed)
			return worldmap.Generate(cfg)
		}},
		{"arena (full visibility)", func() (*worldmap.Map, error) {
			cfg := worldmap.DefaultArenaConfig()
			cfg.Seed = o.Seed + 1
			return worldmap.GenerateArena(cfg)
		}},
	}

	t := metrics.Table{
		Title: "Visibility index study: naive per-client scan vs shared per-frame cache (sequential server)",
		Header: []string{
			"map", "players", "mode", "reply%", "build%", "rate", "resp ms",
		},
	}
	for _, v := range variants {
		m, err := v.build()
		if err != nil {
			return "", err
		}
		for _, players := range []int{64, 96, 144} {
			for _, naive := range []bool{true, false} {
				mode := "indexed"
				if naive {
					mode = "naive"
				}
				o.Progress("visibility: %s players=%d %s", v.label, players, mode)
				res, err := run(simserver.Config{
					Map:              m,
					Players:          players,
					Threads:          1,
					Sequential:       true,
					DurationS:        o.DurationS,
					Seed:             o.Seed,
					IndexedSnapshots: !naive,
				})
				if err != nil {
					return "", err
				}
				buildPct := 0.0
				if total := res.Avg.Total(); total > 0 {
					buildPct = 100 * float64(res.Avg.SnapBuildNs) / float64(total)
				}
				t.AddRow(
					v.label,
					fmt.Sprintf("%d", players),
					mode,
					metrics.Pct(res.Avg.Percent(metrics.CompReply)),
					metrics.Pct(buildPct),
					metrics.F1(res.ResponseRate()),
					metrics.F1(res.ResponseTimeMs()),
				)
			}
		}
	}
	return t.Render(), nil
}
