// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and §5) on the simulated machine. Each Fig* function
// runs the required sweep and renders the same rows/series the paper
// reports as plain-text tables; cmd/qbench drives them all, and
// bench_test.go exposes each as a testing.B benchmark with shortened
// virtual durations.
//
// The experiment workload matches the paper's setup: a large maze map
// "designed to support 16-32 players" loaded far beyond that (64-160
// automatic players), two-minute steady-state runs (configurable; the
// statistics converge within seconds of virtual time), the default
// 31-areanode tree, and the conservative locking baseline unless a
// figure says otherwise.
package experiments

import (
	"fmt"
	"strings"

	"qserve/internal/areanode"
	"qserve/internal/costmodel"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/simserver"
	"qserve/internal/worldmap"
)

// Options tune a reproduction run.
type Options struct {
	// DurationS is the virtual run length per configuration. The paper
	// uses 120s; the defaults here use less because the simulator is
	// deterministic and the statistics are stationary.
	DurationS float64
	// Seed for all runs.
	Seed int64
	// Quiet suppresses progress output on long sweeps.
	Progress func(format string, args ...any)
}

func (o *Options) fill() {
	if o.DurationS <= 0 {
		o.DurationS = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
}

// PaperMapConfig is the experiment map: a 16-room maze sized for 16-32
// players, the analogue of the paper's gmdm10.bsp deathmatch map. All
// player counts from 64 up therefore represent the paper's "extreme
// situations [that] stress the server aggressively".
func PaperMapConfig(seed int64) worldmap.Config {
	cfg := worldmap.DefaultConfig()
	cfg.Name = "gen-dm16"
	cfg.Rows, cfg.Cols = 4, 4
	cfg.Seed = seed + 1
	return cfg
}

// baseConfig assembles the standard experiment configuration.
func baseConfig(o Options, players, threads int, sequential bool, strat locking.Strategy) simserver.Config {
	return simserver.Config{
		MapConfig:  PaperMapConfig(o.Seed),
		Players:    players,
		Threads:    threads,
		Sequential: sequential,
		Strategy:   strat,
		DurationS:  o.DurationS,
		Seed:       o.Seed,
	}
}

// run executes one configuration, failing loudly on simulator errors.
func run(cfg simserver.Config) (*simserver.Result, error) {
	res, err := simserver.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return res, nil
}

// breakdownRow renders the paper's breakdown components for one result.
func breakdownRow(label string, r *simserver.Result) []string {
	bd := r.Avg
	return []string{
		label,
		metrics.Pct(bd.Percent(metrics.CompExec)),
		metrics.Pct(bd.Percent(metrics.CompLock)),
		metrics.Pct(bd.Percent(metrics.CompRecv)),
		metrics.Pct(bd.Percent(metrics.CompReply)),
		metrics.Pct(bd.Percent(metrics.CompIntraWait)),
		metrics.Pct(bd.Percent(metrics.CompInterWait)),
		metrics.Pct(bd.Percent(metrics.CompIdle)),
		metrics.Pct(bd.Percent(metrics.CompWorld)),
		metrics.F1(bd.BytesPerReply()),
	}
}

var breakdownHeader = []string{
	"config", "exec", "lock", "recv", "reply", "intra-wait", "inter-wait", "idle", "world", "B/reply",
}

// Table1 prints the simulated testbed configuration — the analogue of
// the paper's Table 1.
func Table1() string {
	m := costmodel.PaperMachine()
	t := metrics.Table{
		Title:  "Table 1: configuration of the (simulated) game server system",
		Header: []string{"component", "value"},
	}
	t.AddRow("CPUs", m.Name)
	t.AddRow("cores x SMT", fmt.Sprintf("%d x %d-way", m.Cores, m.SMTWays))
	t.AddRow("SMT penalty", metrics.F2(m.SMTPenalty))
	t.AddRow("bus contention beta", metrics.F2(m.MemContention))
	t.AddRow("network", "simulated LAN, 0.15ms one-way")
	t.AddRow("map", "gen-dm16 (16 rooms, procedurally generated)")
	t.AddRow("areanodes", fmt.Sprintf("%d (depth %d, %d leaves)",
		1<<(areanode.DefaultDepth+1)-1, areanode.DefaultDepth, 1<<areanode.DefaultDepth))
	return t.Render()
}

// Fig1 runs the sequential server briefly and reports the measured phase
// ordering and shares — the structural content of the paper's Figure 1.
func Fig1(o Options) (string, error) {
	o.fill()
	res, err := run(baseConfig(o, 64, 1, true, nil))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig 1: sequential server frame structure (S -> P -> Rx/E -> T/Tx)\n")
	fmt.Fprintf(&b, "measured over %d frames at 64 players:\n", res.Frames)
	bd := res.Avg
	fmt.Fprintf(&b, "  S  (select/idle)      %6s\n", metrics.Pct(bd.Percent(metrics.CompIdle)))
	fmt.Fprintf(&b, "  P  (world physics)    %6s\n", metrics.Pct(bd.Percent(metrics.CompWorld)))
	fmt.Fprintf(&b, "  Rx/E (recv+execute)   %6s\n", metrics.Pct(bd.Percent(metrics.CompRecv)+bd.Percent(metrics.CompExec)))
	fmt.Fprintf(&b, "  T/Tx (form+send)      %6s\n", metrics.Pct(bd.Percent(metrics.CompReply)))
	return b.String(), nil
}

// Fig2 demonstrates areanode tree construction and object linking — the
// paper's Figure 2 — by building the default tree over the experiment
// map and reporting the link distribution of a populated world.
func Fig2(o Options) (string, error) {
	o.fill()
	res, err := run(baseConfig(o, 32, 1, false, locking.Optimized{}))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig 2: areanode tree (default depth 4: 31 nodes, 16 leaves)\n")
	fmt.Fprintf(&b, "tree leaves: %d; ", res.NumLeaves)
	fmt.Fprintf(&b, "objects crossing division planes link to interior nodes,\n")
	fmt.Fprintf(&b, "others to leaves; per-request distinct leaves locked: %.2f\n",
		res.Locks.AvgDistinctLeavesPerRequest())
	return b.String(), nil
}

// Fig3 traces one multithreaded run's frame orchestration — the paper's
// Figure 3 — and renders an execution timeline of the traced frames:
// per-thread phase spans (W=world, r=requests, b=intra barrier, R=reply,
// o=wait for request phase, e=wait for frame end, .=idle/select).
func Fig3(o Options) (string, error) {
	o.fill()
	cfg := baseConfig(o, 144, 4, false, locking.Conservative{})
	cfg.TraceFrames = 40
	res, err := run(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig 3: parallel frame orchestration (4 threads, 144 players)\n")
	total, parts := 0, 0
	for _, f := range res.FrameLog.Frames {
		total++
		parts += f.Participants
	}
	fmt.Fprintf(&b, "frames: %d, avg participants/frame: %.2f (threads missing a frame\n",
		total, float64(parts)/float64(max(total, 1)))
	fmt.Fprintf(&b, "wait for the frame-end signal and join the next frame)\n")
	bd := res.Avg
	fmt.Fprintf(&b, "inter-frame wait: %s, intra-frame wait: %s of thread time\n\n",
		metrics.Pct(bd.Percent(metrics.CompInterWait)), metrics.Pct(bd.Percent(metrics.CompIntraWait)))
	b.WriteString(RenderTimeline(res.Trace, res.Threads, 96))
	b.WriteString("W=world r=requests b=barrier R=reply o=wait-open e=wait-end .=idle\n")
	return b.String(), nil
}

// RenderTimeline draws traced phase spans as one text row per thread,
// bucketing virtual time into width columns. Later spans overwrite
// earlier ones within a bucket, which favours the more interesting
// (shorter) phases.
func RenderTimeline(trace []simserver.PhaseSpan, threads, width int) string {
	if len(trace) == 0 {
		return "(no trace)\n"
	}
	start, end := trace[0].StartNs, trace[0].EndNs
	for _, s := range trace {
		if s.StartNs < start {
			start = s.StartNs
		}
		if s.EndNs > end {
			end = s.EndNs
		}
	}
	if end <= start {
		return "(empty trace window)\n"
	}
	glyph := map[string]byte{
		"world": 'W', "requests": 'r', "barrier": 'b', "reply": 'R',
		"wait-open": 'o', "wait-end": 'e', "idle": '.',
	}
	rows := make([][]byte, threads)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	span := float64(end - start)
	for _, s := range trace {
		g, ok := glyph[s.Phase]
		if !ok || s.Thread >= threads {
			continue
		}
		lo := int(float64(s.StartNs-start) / span * float64(width))
		hi := int(float64(s.EndNs-start) / span * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		for c := lo; c < hi && c < width; c++ {
			rows[s.Thread][c] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline of first traced frames (%.2fms of virtual time):\n",
		span/1e6)
	for i, row := range rows {
		fmt.Fprintf(&b, "  T%d |%s|\n", i, row)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig4 reproduces Figure 4: overhead of the parallel version at one
// thread versus the sequential server, at 64/96/128 players — execution
// breakdowns (a), response rate (b), and response time (c).
func Fig4(o Options) (string, error) {
	o.fill()
	players := []int{64, 96, 128}
	bdt := metrics.Table{Title: "Fig 4(a): sequential vs single-thread parallel breakdowns", Header: breakdownHeader}
	rt := metrics.Table{
		Title:  "Fig 4(b,c): response rate and time",
		Header: []string{"players", "seq rate/s", "1T-par rate/s", "seq resp ms", "1T-par resp ms", "overhead"},
	}
	for _, n := range players {
		o.Progress("fig4: players=%d", n)
		seq, err := run(baseConfig(o, n, 1, true, nil))
		if err != nil {
			return "", err
		}
		par, err := run(baseConfig(o, n, 1, false, locking.Conservative{}))
		if err != nil {
			return "", err
		}
		bdt.AddRow(breakdownRow(fmt.Sprintf("seq/%d", n), seq)...)
		bdt.AddRow(breakdownRow(fmt.Sprintf("1T/%d", n), par)...)
		overhead := RequestOverhead(seq, par)
		rt.AddRow(
			fmt.Sprint(n),
			metrics.F1(seq.ResponseRate()),
			metrics.F1(par.ResponseRate()),
			metrics.F1(seq.ResponseTimeMs()),
			metrics.F1(par.ResponseTimeMs()),
			metrics.Pct(overhead),
		)
	}
	return bdt.Render() + "\n" + rt.Render(), nil
}

// RequestOverhead returns the parallelization overhead as the per-request
// request-processing (exec+lock) time inflation of the parallel run over
// the sequential baseline, in percent — the quantity behind the paper's
// "less than 5% at small player counts ... up to 15% at 128 players".
// Per-request normalization keeps the metric meaningful at saturation,
// where both servers are 100% busy by construction.
func RequestOverhead(seq, par *simserver.Result) float64 {
	if seq.Requests == 0 || par.Requests == 0 {
		return 0
	}
	seqPer := float64(seq.Avg.Ns[metrics.CompExec]) / float64(seq.Requests)
	parPer := float64(par.Avg.Ns[metrics.CompExec]+par.Avg.Ns[metrics.CompLock]) / float64(par.Requests)
	if seqPer <= 0 {
		return 0
	}
	return 100 * (parPer - seqPer) / seqPer
}

// threadSweep runs the Fig 5/Fig 6 grid: thread counts × player counts
// under the given strategy.
func threadSweep(o Options, strat locking.Strategy, title string) (string, error) {
	threads := []int{2, 4, 8}
	players := []int{64, 96, 128, 144, 160}
	bdt := metrics.Table{Title: title + " — average execution time breakdowns", Header: breakdownHeader}
	rt := metrics.Table{
		Title:  title + " — response rate (replies/s) and response time (ms)",
		Header: []string{"players", "2T rate", "4T rate", "8T rate", "2T ms", "4T ms", "8T ms"},
	}
	rates := map[[2]int]*simserver.Result{}
	for _, th := range threads {
		for _, n := range players {
			o.Progress("%s: threads=%d players=%d", title, th, n)
			res, err := run(baseConfig(o, n, th, false, strat))
			if err != nil {
				return "", err
			}
			rates[[2]int{th, n}] = res
			bdt.AddRow(breakdownRow(fmt.Sprintf("%dT/%d", th, n), res)...)
		}
	}
	for _, n := range players {
		row := []string{fmt.Sprint(n)}
		for _, th := range threads {
			row = append(row, metrics.F1(rates[[2]int{th, n}].ResponseRate()))
		}
		for _, th := range threads {
			row = append(row, metrics.F1(rates[[2]int{th, n}].ResponseTimeMs()))
		}
		rt.AddRow(row...)
	}
	return bdt.Render() + "\n" + rt.Render(), nil
}

// Fig5 reproduces Figure 5: multithreaded performance under the
// conservative (baseline) locking scheme.
func Fig5(o Options) (string, error) {
	o.fill()
	return threadSweep(o, locking.Conservative{}, "Fig 5: conservative locking")
}

// Fig6 reproduces Figure 6: the same sweep with optimized
// (expanded/directional) locking.
func Fig6(o Options) (string, error) {
	o.fill()
	return threadSweep(o, locking.Optimized{}, "Fig 6: optimized locking")
}

// Fig7a reproduces Figure 7(a): the split of lock time between leaf and
// parent areanode locking per thread count and player count.
func Fig7a(o Options) (string, error) {
	o.fill()
	t := metrics.Table{
		Title:  "Fig 7(a): share of lock time from leaf vs parent areanode locking",
		Header: []string{"config", "leaf", "parent"},
	}
	for _, th := range []int{2, 4, 8} {
		for _, n := range []int{64, 128, 160} {
			o.Progress("fig7a: threads=%d players=%d", th, n)
			res, err := run(baseConfig(o, n, th, false, locking.Conservative{}))
			if err != nil {
				return "", err
			}
			total := res.Avg.LeafLockNs + res.Avg.ParentLockNs
			leaf, parent := 0.0, 0.0
			if total > 0 {
				leaf = 100 * float64(res.Avg.LeafLockNs) / float64(total)
				parent = 100 * float64(res.Avg.ParentLockNs) / float64(total)
			}
			t.AddRow(fmt.Sprintf("%dT/%d", th, n), metrics.Pct(leaf), metrics.Pct(parent))
		}
	}
	return t.Render(), nil
}

// Fig7b reproduces Figure 7(b): the average percentage of distinct leaf
// areanodes locked per request as the tree size varies from 3 to 63
// areanodes. As in the paper's analysis of region sizes, the request
// regions come from the game-aware (optimized) strategy; the whole-map
// conservative fallback would pin every point at 100%.
func Fig7b(o Options) (string, error) {
	o.fill()
	t := metrics.Table{
		Title:  "Fig 7(b): distinct leaves locked per request vs areanode count",
		Header: []string{"areanodes", "leaves", "distinct/req", "% of world", "relocked"},
	}
	for _, depth := range []int{1, 2, 3, 4, 5} {
		o.Progress("fig7b: depth=%d", depth)
		cfg := baseConfig(o, 128, 4, false, locking.Optimized{})
		cfg.AreanodeDepth = depth
		res, err := run(cfg)
		if err != nil {
			return "", err
		}
		distinct := res.Locks.AvgDistinctLeavesPerRequest()
		t.AddRow(
			fmt.Sprint(1<<(depth+1)-1),
			fmt.Sprint(res.NumLeaves),
			metrics.F2(distinct),
			metrics.Pct(100*distinct/float64(res.NumLeaves)),
			metrics.Pct(100*res.Locks.RelockFraction()),
		)
	}
	return t.Render(), nil
}

// Fig7c reproduces Figure 7(c): the fraction of leaves locked by at
// least two threads in the same frame, versus player count.
func Fig7c(o Options) (string, error) {
	o.fill()
	t := metrics.Table{
		Title:  "Fig 7(c): leaves locked by >=2 threads per frame",
		Header: []string{"players", "2T", "4T", "8T"},
	}
	players := []int{64, 96, 128, 144, 160}
	cells := map[[2]int]string{}
	for _, th := range []int{2, 4, 8} {
		for _, n := range players {
			o.Progress("fig7c: threads=%d players=%d", th, n)
			res, err := run(baseConfig(o, n, th, false, locking.Conservative{}))
			if err != nil {
				return "", err
			}
			cells[[2]int{th, n}] = metrics.Pct(100 * res.FrameLog.SharedLeafFraction())
		}
	}
	for _, n := range players {
		t.AddRow(fmt.Sprint(n), cells[[2]int{2, n}], cells[[2]int{4, n}], cells[[2]int{8, n}])
	}
	return t.Render(), nil
}

// Imbalance reproduces the §4.2/§5.2 workload-balance statistics:
// requests per thread per frame and the per-frame spread.
func Imbalance(o Options) (string, error) {
	o.fill()
	t := metrics.Table{
		Title:  "Sec 4.2/5.2: per-frame request balance at 128 players",
		Header: []string{"threads", "req/thread/frame", "spread mean", "spread stddev"},
	}
	for _, th := range []int{2, 4, 8} {
		o.Progress("imbalance: threads=%d", th)
		res, err := run(baseConfig(o, 128, th, false, locking.Conservative{}))
		if err != nil {
			return "", err
		}
		mean, sd := res.FrameLog.ImbalanceStats()
		t.AddRow(
			fmt.Sprint(th),
			metrics.F2(res.FrameLog.RequestsPerThreadPerFrame()),
			metrics.F2(mean),
			metrics.F2(sd),
		)
	}
	return t.Render(), nil
}

// Coverage reproduces the §5.1 per-frame map-activity statistics: the
// fraction of the map accessed per frame and leaf lock operations.
func Coverage(o Options) (string, error) {
	o.fill()
	t := metrics.Table{
		Title:  "Sec 5.1: map region activity per frame (conservative locking)",
		Header: []string{"config", "touched leaves", "lock ops/leaf/frame"},
	}
	for _, th := range []int{2, 4, 8} {
		for _, n := range []int{64, 128, 160} {
			o.Progress("coverage: threads=%d players=%d", th, n)
			res, err := run(baseConfig(o, n, th, false, locking.Conservative{}))
			if err != nil {
				return "", err
			}
			t.AddRow(
				fmt.Sprintf("%dT/%d", th, n),
				metrics.Pct(100*res.FrameLog.TouchedLeafFraction()),
				metrics.F2(res.FrameLog.LockOpsPerLeafPerFrame()),
			)
		}
	}
	return t.Render(), nil
}

// Saturation summarizes the headline scaling claim: the player count at
// which each configuration saturates, where saturation is detected as
// mean response time exceeding two client frames or dropped replies.
func Saturation(o Options) (string, error) {
	o.fill()
	t := metrics.Table{
		Title:  "Headline: supported players per configuration",
		Header: []string{"config", "supported", "vs sequential"},
	}
	players := []int{96, 112, 128, 144, 160, 176, 192, 208}
	type probe struct {
		label string
		mk    func(n int) simserver.Config
	}
	probes := []probe{
		{"sequential", func(n int) simserver.Config { return baseConfig(o, n, 1, true, nil) }},
		{"2T conservative", func(n int) simserver.Config { return baseConfig(o, n, 2, false, locking.Conservative{}) }},
		{"4T conservative", func(n int) simserver.Config { return baseConfig(o, n, 4, false, locking.Conservative{}) }},
		{"8T conservative", func(n int) simserver.Config { return baseConfig(o, n, 8, false, locking.Conservative{}) }},
		{"8T optimized", func(n int) simserver.Config { return baseConfig(o, n, 8, false, locking.Optimized{}) }},
	}
	var seqSupported int
	for _, pr := range probes {
		supported := 0
		for _, n := range players {
			o.Progress("saturation: %s players=%d", pr.label, n)
			res, err := run(pr.mk(n))
			if err != nil {
				return "", err
			}
			replied := float64(res.Resp.Replies) / float64(maxI64(res.Requests, 1))
			if res.ResponseTimeMs() <= 2*33 && replied >= 0.97 {
				supported = n
			} else {
				break
			}
		}
		if pr.label == "sequential" {
			seqSupported = supported
		}
		gain := "-"
		if seqSupported > 0 && pr.label != "sequential" {
			gain = metrics.Pct(100 * float64(supported-seqSupported) / float64(seqSupported))
		}
		t.AddRow(pr.label, fmt.Sprint(supported), gain)
	}
	return t.Render(), nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// WaitAnalysis reproduces §5.2's decomposition of inter-frame wait time
// into waiting for the world update versus waiting for the previous
// frame to complete.
func WaitAnalysis(o Options) (string, error) {
	o.fill()
	t := metrics.Table{
		Title:  "Sec 5.2: wait time analysis (conservative locking, 128 players)",
		Header: []string{"threads", "intra-wait", "inter-wait", "total wait"},
	}
	for _, th := range []int{2, 4, 8} {
		o.Progress("wait: threads=%d", th)
		res, err := run(baseConfig(o, 128, th, false, locking.Conservative{}))
		if err != nil {
			return "", err
		}
		bd := res.Avg
		intra := bd.Percent(metrics.CompIntraWait)
		inter := bd.Percent(metrics.CompInterWait)
		t.AddRow(fmt.Sprint(th), metrics.Pct(intra), metrics.Pct(inter), metrics.Pct(intra+inter))
	}
	return t.Render(), nil
}

// All runs every experiment in paper order and concatenates the reports.
func All(o Options) (string, error) {
	o.fill()
	var b strings.Builder
	b.WriteString(Table1())
	b.WriteString("\n")
	steps := []func(Options) (string, error){
		Fig1, Fig2, Fig3, Fig4, Fig5, Fig6, Fig7a, Fig7b, Fig7c,
		Imbalance, Coverage, WaitAnalysis, MapStudy, Saturation, Ablations, Balance, Durability,
	}
	for _, step := range steps {
		out, err := step(o)
		if err != nil {
			return b.String(), err
		}
		b.WriteString(out)
		b.WriteString("\n")
	}
	return b.String(), nil
}
