package experiments

import (
	"fmt"

	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/simserver"
)

// AblationAssignment evaluates the paper's §5.1 future-work proposal:
// "dynamically assigning threads to players taking into account the
// region they are located may reduce contention". It compares the static
// block policy, static round-robin, and periodic region-based
// repartitioning under the optimized locking scheme (whole-map
// conservative locks make player placement irrelevant).
func AblationAssignment(o Options) (string, error) {
	o.fill()
	t := metrics.Table{
		Title: "Ablation (paper §5.1 future work): player→thread assignment policy",
		Header: []string{
			"policy", "players", "lock%", "leaf-shared", "intra-wait", "resp ms",
		},
	}
	for _, policy := range []simserver.AssignPolicy{
		simserver.AssignBlock, simserver.AssignRoundRobin, simserver.AssignRegion,
	} {
		for _, players := range []int{128, 144} {
			o.Progress("ablation-assign: %v players=%d", policy, players)
			cfg := baseConfig(o, players, 4, false, locking.Optimized{})
			cfg.Assign = policy
			res, err := run(cfg)
			if err != nil {
				return "", err
			}
			t.AddRow(
				policy.String(),
				fmt.Sprint(players),
				metrics.Pct(res.Avg.Percent(metrics.CompLock)),
				metrics.Pct(100*res.FrameLog.SharedLeafFraction()),
				metrics.Pct(res.Avg.Percent(metrics.CompIntraWait)),
				metrics.F1(res.ResponseTimeMs()),
			)
		}
	}
	return t.Render(), nil
}

// AblationBatching evaluates the §5.2 future-work proposal: "the frame
// master thread can wait for a period of time before starting the
// frame". Batching thickens frames (more requests and participants per
// frame) at the cost of added response latency.
func AblationBatching(o Options) (string, error) {
	o.fill()
	t := metrics.Table{
		Title: "Ablation (paper §5.2 future work): request batching delay",
		Header: []string{
			"batch", "frames", "req/thread/frame", "intra-wait", "inter-wait", "resp ms",
		},
	}
	for _, batchUs := range []int64{0, 250, 500, 1000, 2000} {
		o.Progress("ablation-batch: %dus", batchUs)
		cfg := baseConfig(o, 128, 4, false, locking.Conservative{})
		cfg.BatchDelayNs = batchUs * 1000
		res, err := run(cfg)
		if err != nil {
			return "", err
		}
		t.AddRow(
			fmt.Sprintf("%dus", batchUs),
			fmt.Sprint(res.Frames),
			metrics.F2(res.FrameLog.RequestsPerThreadPerFrame()),
			metrics.Pct(res.Avg.Percent(metrics.CompIntraWait)),
			metrics.Pct(res.Avg.Percent(metrics.CompInterWait)),
			metrics.F1(res.ResponseTimeMs()),
		)
	}
	return t.Render(), nil
}

// AblationSMT isolates the machine model: the same 8-thread workload on
// the paper's 4-core SMT machine versus a hypothetical 8 true cores and
// a contention-free memory system, quantifying how much of the "8
// threads do not improve performance" result each hardware limit
// contributes.
func AblationSMT(o Options) (string, error) {
	o.fill()
	t := metrics.Table{
		Title:  "Ablation: machine model at 8 threads, 160 players",
		Header: []string{"machine", "rate", "resp ms", "lock%", "wait%"},
	}
	type variant struct {
		name  string
		cores int
		smt   float64
		mem   float64
	}
	for _, v := range []variant{
		{"paper: 4 cores, SMT 1.6, bus 0.28", 4, 1.6, 0.28},
		{"no SMT penalty", 4, 1.0, 0.28},
		{"no bus contention", 4, 1.6, 0},
		{"ideal: 8 true cores, free memory", 8, 1.0, 0},
	} {
		o.Progress("ablation-smt: %s", v.name)
		cfg := baseConfig(o, 160, 8, false, locking.Conservative{})
		cfg.Machine.Cores = v.cores
		cfg.Machine.SMTPenalty = v.smt
		cfg.Machine.MemContention = v.mem
		res, err := run(cfg)
		if err != nil {
			return "", err
		}
		t.AddRow(
			v.name,
			metrics.F1(res.ResponseRate()),
			metrics.F1(res.ResponseTimeMs()),
			metrics.Pct(res.Avg.Percent(metrics.CompLock)),
			metrics.Pct(res.Avg.Percent(metrics.CompIntraWait)+res.Avg.Percent(metrics.CompInterWait)),
		)
	}
	return t.Render(), nil
}

// AblationLockGranularity measures lock overhead versus areanode tree
// depth under contention — the experiment behind the paper's §5.1
// remark that growing the tree beyond 31 areanodes "does not seem to
// have an impact on the lock overhead".
func AblationLockGranularity(o Options) (string, error) {
	o.fill()
	t := metrics.Table{
		Title:  "Ablation: lock overhead vs areanode tree size (4T, 144 players, optimized)",
		Header: []string{"areanodes", "lock%", "leaf-shared", "resp ms"},
	}
	for _, depth := range []int{1, 2, 3, 4, 5} {
		o.Progress("ablation-granularity: depth=%d", depth)
		cfg := baseConfig(o, 144, 4, false, locking.Optimized{})
		cfg.AreanodeDepth = depth
		res, err := run(cfg)
		if err != nil {
			return "", err
		}
		t.AddRow(
			fmt.Sprint(1<<(depth+1)-1),
			metrics.Pct(res.Avg.Percent(metrics.CompLock)),
			metrics.Pct(100*res.FrameLog.SharedLeafFraction()),
			metrics.F1(res.ResponseTimeMs()),
		)
	}
	return t.Render(), nil
}

// Ablations runs every ablation experiment.
func Ablations(o Options) (string, error) {
	o.fill()
	var out string
	for _, fn := range []func(Options) (string, error){
		AblationAssignment, AblationBatching, AblationSMT, AblationLockGranularity,
	} {
		s, err := fn(o)
		if err != nil {
			return out, err
		}
		out += s + "\n"
	}
	return out, nil
}
