package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/game"
	"qserve/internal/match"
	"qserve/internal/metrics"
	"qserve/internal/server"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// Instancing is the consolidation headline: thousands of matches in one
// process on a shared worker pool must not cost the active matches
// their frame cadence. Like Chaos, this runs the *live* engine — real
// goroutines, the in-memory transport, the lobby admitting bots by
// match name — and measures behavior plus step-time tails rather than
// simulated time. Two fleets run back to back:
//
//	solo:  1 active match, its bots connected through the lobby
//	fleet: 1000 idle + 64 active matches on the same worker pool
//
// and the report compares the active matches' p99 frame-step time. The
// acceptance line is fleet p99 within 10% of solo p99 (the scheduler
// adds only pop/requeue around a step, and idle matches detach their
// scratch, so the fleet's extra cost is cache pressure, not work).
func Instancing(o Options) (string, error) {
	o.fill()
	const (
		idleMatches   = 1000
		activeMatches = 64
		botsPerMatch  = 2
	)
	// Wall-clock run length: DurationS is virtual seconds for the
	// simulated figures; here 1 "second" buys 200ms of live running
	// (default -dur 10 => 2s per fleet, matching the CI tail gate).
	runFor := time.Duration(o.DurationS*200) * time.Millisecond

	o.Progress("instancing: solo baseline (1 match, %d bots)", botsPerMatch)
	solo, err := runInstancingFleet(o, 0, 1, botsPerMatch, runFor)
	if err != nil {
		return "", err
	}
	o.Progress("instancing: fleet (%d idle + %d active, %d bots)",
		idleMatches, activeMatches, activeMatches*botsPerMatch)
	fleet, err := runInstancingFleet(o, idleMatches, activeMatches, botsPerMatch, runFor)
	if err != nil {
		return "", err
	}

	t := metrics.Table{
		Title: fmt.Sprintf("Instancing: shared worker pool, %v per fleet", runFor),
		Header: []string{"fleet", "matches", "active", "bots", "frames",
			"step p50 ms", "step p99 ms", "late p99 ms", "scratch sets", "evicted"},
	}
	for _, r := range []*instancingResult{solo, fleet} {
		t.AddRow(r.label,
			fmt.Sprint(r.matches),
			fmt.Sprint(r.active),
			fmt.Sprint(r.bots),
			fmt.Sprint(r.frames),
			metrics.F3(r.activeP50Ms),
			metrics.F3(r.activeP99Ms),
			metrics.F3(r.lateP99Ms),
			fmt.Sprint(r.scratchMade),
			fmt.Sprint(r.evicted))
	}

	var summary strings.Builder
	ratio := 0.0
	if solo.activeP99Ms > 0 {
		ratio = fleet.activeP99Ms / solo.activeP99Ms
	}
	fmt.Fprintf(&summary, "active-match step p99: solo %sms, fleet %sms (ratio %s)\n",
		metrics.F3(solo.activeP99Ms), metrics.F3(fleet.activeP99Ms), metrics.F2(ratio))
	// The histogram quantizes to ~12%-wide log bins, so adjacent-bin
	// p99s (ratio up to ~1.12) are indistinguishable from equal; flag
	// only a shift past one bin.
	switch {
	case ratio > 1.25:
		fmt.Fprintf(&summary, "WARNING fleet p99 exceeds solo beyond histogram resolution\n")
	case ratio > 1.0:
		fmt.Fprintf(&summary, "fleet p99 within one ~12%% histogram bin of solo\n")
	}
	fmt.Fprintf(&summary, "scratch sets for %d matches: %d (idle matches detach; the pool tracks concurrency, not fleet size)\n",
		fleet.matches, fleet.scratchMade)
	if fleet.evicted > 0 || solo.evicted > 0 {
		fmt.Fprintf(&summary, "WARNING matches were evicted during the run\n")
	}
	return t.Render() + summary.String(), nil
}

// instancingResult is the rollup of one fleet run.
type instancingResult struct {
	label       string
	matches     int
	active      int
	bots        int
	frames      uint64
	activeP50Ms float64
	activeP99Ms float64
	lateP99Ms   float64
	scratchMade int
	evicted     int
}

// runInstancingFleet stands up a manager+lobby, admits idle matches
// directly and active matches through the lobby (bots connect by match
// name over the wire), lets the fleet run, and rolls up per-match
// stats.
func runInstancingFleet(o Options, idle, active, botsPer int, runFor time.Duration) (*instancingResult, error) {
	mc := worldmap.DefaultConfig()
	mc.Rows, mc.Cols = 2, 2
	mc.ItemsPerRoom = 1
	mc.TeleporterPairs = 0
	mc.Seed = o.Seed + 1
	m := worldmap.MustGenerate(mc)

	mkEngine := func(conn transport.Conn, shared *server.SharedBufs) (*server.Sequential, error) {
		w, err := game.NewWorld(game.Config{Map: m, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		return server.NewSequential(server.Config{
			World:      w,
			Conns:      []transport.Conn{conn},
			MaxClients: botsPer + 2,
			Shared:     shared,
		})
	}

	mgr := match.NewManager(match.Config{})
	net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 8192})
	srvConn, err := net.Listen("srv:0")
	if err != nil {
		return nil, err
	}
	lobby := match.NewLobby(mgr, srvConn)
	defer lobby.Close()

	for i := 0; i < idle; i++ {
		conn, err := net.Listen(fmt.Sprintf("idle:%d", i))
		if err != nil {
			return nil, err
		}
		eng, err := mkEngine(conn, mgr.Shared())
		if err != nil {
			return nil, err
		}
		if _, err := mgr.Add(fmt.Sprintf("idle-%d", i), eng); err != nil {
			return nil, err
		}
	}
	for i := 0; i < active; i++ {
		name := fmt.Sprintf("act-%d", i)
		if _, err := lobby.CreateMatch(name, func(conn transport.Conn) (*server.Sequential, error) {
			return mkEngine(conn, mgr.Shared())
		}); err != nil {
			return nil, err
		}
	}
	mgr.Start()
	defer mgr.Stop()

	var bots []*botclient.Bot
	for i := 0; i < active; i++ {
		for j := 0; j < botsPer; j++ {
			bc, err := net.Listen(fmt.Sprintf("bot:%d:%d", i, j))
			if err != nil {
				return nil, err
			}
			bot, err := botclient.New(botclient.Config{
				Name:   fmt.Sprintf("b%d-%d", i, j),
				Conn:   bc,
				Server: transport.MemAddr("srv:0"),
				Map:    m,
				Seed:   o.Seed + int64(i*100+j),
				Match:  fmt.Sprintf("act-%d", i),
			})
			if err != nil {
				return nil, err
			}
			if err := bot.Connect(); err != nil {
				return nil, fmt.Errorf("instancing: bot %d:%d connect: %w", i, j, err)
			}
			bots = append(bots, bot)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, bot := range bots {
		wg.Add(1)
		go func(b *botclient.Bot) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				b.Step()
				time.Sleep(10 * time.Millisecond)
			}
		}(bot)
	}
	time.Sleep(runFor)
	close(stop)
	wg.Wait()
	mgr.Stop()

	ag := mgr.AggregateStats()
	res := &instancingResult{
		label:       "fleet",
		matches:     ag.Matches,
		bots:        len(bots),
		frames:      ag.Frames,
		lateP99Ms:   ag.LateHist.P99(),
		scratchMade: ag.ScratchMade,
		evicted:     ag.Evicted,
	}
	if idle == 0 {
		res.label = "solo"
	}
	// The headline tail is the *active* matches' step time; idle ticks
	// are near-free and would wash it out.
	res.active = ag.ActiveM
	activeSteps := mgr.ActiveStepHist()
	res.activeP50Ms = activeSteps.P50()
	res.activeP99Ms = activeSteps.P99()
	return res, nil
}
