package experiments

import (
	"fmt"
	"os"

	"qserve/internal/checkpoint"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/simserver"
	"qserve/internal/worldmap"
)

// Durability measures what the durability layer costs the frame loop: a
// cadence sweep on the simulated machine, from no checkpointing at all
// to an aggressively short interval, at the paper's overload player
// count. The capture charge lands on the barrier master during the
// reply phase (DESIGN.md §12), so the columns to watch are the
// per-capture serialization time against the 33ms frame budget and the
// response-time delta against the "off" baseline. The delta column
// shows why the full/delta rotation exists: per-image bytes shrink to
// the working set that actually changed.
func Durability(o Options) (string, error) {
	o.fill()
	const (
		players       = 64
		threads       = 4
		frameBudgetNs = 33e6
	)
	type cadence struct {
		name     string
		interval uint64
		delta    int
	}
	rows := []cadence{
		{"off", 0, 0},
		{"full only @120", 120, 0},
		{"full+delta @120 (default)", checkpoint.DefaultInterval, checkpoint.DefaultDeltaEvery},
		{"full+delta @30", 30, checkpoint.DefaultDeltaEvery},
	}

	t := metrics.Table{
		Title: fmt.Sprintf("Durability: checkpoint cadence sweep, DES, %d players, %d threads, optimized locking",
			players, threads),
		Header: []string{"cadence", "ckpts", "per-capture", "% frame", "KB", "KB/full", "KB/delta",
			"skips", "resp ms", "overhead"},
	}
	baseResp := 0.0
	for _, c := range rows {
		o.Progress("durability: %s", c.name)
		mc := PaperMapConfig(o.Seed)
		m := worldmap.MustGenerate(mc)
		cfg := simserver.Config{
			Map:       m,
			Players:   players,
			Threads:   threads,
			Strategy:  locking.Optimized{},
			DurationS: o.DurationS,
			Seed:      o.Seed,
		}
		var wr *checkpoint.Writer
		if c.interval > 0 {
			dir, err := os.MkdirTemp("", "qbench-durability-*")
			if err != nil {
				return "", err
			}
			defer os.RemoveAll(dir)
			if wr, err = checkpoint.NewWriter(checkpoint.Config{
				Dir:        dir,
				Interval:   c.interval,
				DeltaEvery: c.delta,
				WorldSeed:  o.Seed,
				Map:        m,
			}); err != nil {
				return "", err
			}
			cfg.Checkpoint = wr
		}
		res, err := simserver.Run(cfg)
		if err != nil {
			return "", err
		}
		if wr != nil {
			if err := wr.Close(); err != nil {
				return "", err
			}
		}

		var bd metrics.Breakdown
		for i := range res.PerThread {
			bd.Add(&res.PerThread[i])
		}
		resp := res.ResponseTimeMs()
		if c.interval == 0 {
			baseResp = resp
		}
		perCapture, share := 0.0, 0.0
		fulls := bd.Checkpoints
		if c.delta > 0 && bd.Checkpoints > 0 {
			fulls = (bd.Checkpoints + int64(c.delta)) / int64(c.delta+1)
		}
		deltas := bd.Checkpoints - fulls
		perFull, perDelta := 0.0, 0.0
		if fulls > 0 {
			perFull = float64(bd.CheckpointFullBytes) / float64(fulls) / 1024
		}
		if deltas > 0 {
			perDelta = float64(bd.CheckpointDeltaBytes) / float64(deltas) / 1024
		}
		if bd.Checkpoints > 0 {
			perCapture = float64(bd.CheckpointNs) / float64(bd.Checkpoints)
			share = perCapture / frameBudgetNs * 100
		}
		overhead := "baseline"
		if c.interval > 0 && baseResp > 0 {
			overhead = fmt.Sprintf("%+.1f%%", (resp-baseResp)/baseResp*100)
		}
		t.AddRow(c.name,
			fmt.Sprint(bd.Checkpoints),
			fmt.Sprintf("%.0fµs", perCapture/1e3),
			fmt.Sprintf("%.2f%%", share),
			fmt.Sprint(bd.CheckpointBytes/1024),
			fmt.Sprintf("%.1f", perFull),
			fmt.Sprintf("%.1f", perDelta),
			fmt.Sprint(bd.CheckpointSkips),
			fmt.Sprintf("%.2f", resp),
			overhead)
	}
	return t.Render() +
		"skips: captures dropped because the off-thread flusher still owned every buffer\n" +
		"(virtual cadence outruns real disk in the DES; live servers see 0 at default cadence)\n", nil
}
