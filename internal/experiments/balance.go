package experiments

import (
	"fmt"
	"strings"

	"qserve/internal/balance"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/simserver"
	"qserve/internal/worldmap"
)

// skewedConfig builds the balancing experiment's workload: a quarter of
// the players pinned to the map's first room. Static block assignment
// lands the whole cluster on thread 0, and the dense candidate sets make
// its requests the most expensive on the server — the paper's §5.2
// "uneven distribution of workload among threads" pushed to its worst
// case ("all bots clustered in one room").
func skewedConfig(o Options, players, threads, cluster int) simserver.Config {
	mc := worldmap.DefaultConfig()
	mc.Seed = o.Seed + 1
	return simserver.Config{
		MapConfig: mc,
		Players:   players,
		Threads:   threads,
		Strategy:  locking.Optimized{},
		DurationS: o.DurationS,
		Seed:      o.Seed,
		Cluster:   cluster,
	}
}

// Balance runs the dynamic load-balancing experiment: the skewed
// workload under static assignment versus the barrier-migration
// balancer, reporting the max/mean execute-phase load ratio across
// threads (1.0 = perfectly even), migration counts, and the usual
// throughput metrics. Acceptance for the balancer is a >=30% ratio
// reduction at 4+ threads with no change in game outcome (the outcome
// half is proven by the cross-engine conformance suite).
func Balance(o Options) (string, error) {
	o.fill()
	const players = 96
	const cluster = 24
	t := metrics.Table{
		Title: fmt.Sprintf("Balance: skewed workload (%d of %d players clustered in room 0)",
			cluster, players),
		Header: []string{"config", "exec max/mean", "migrations", "rate/s", "resp ms"},
	}
	var summary strings.Builder
	for _, th := range []int{4, 8} {
		o.Progress("balance: threads=%d static", th)
		static, err := run(skewedConfig(o, players, th, cluster))
		if err != nil {
			return "", err
		}
		o.Progress("balance: threads=%d balanced", th)
		cfg := skewedConfig(o, players, th, cluster)
		cfg.Balance = balance.Policy{Enabled: true}
		balanced, err := run(cfg)
		if err != nil {
			return "", err
		}
		rs, rb := static.FrameLog.ExecLoadRatio(), balanced.FrameLog.ExecLoadRatio()
		t.AddRow(fmt.Sprintf("%dT static", th), metrics.F2(rs), "0",
			metrics.F1(static.ResponseRate()), metrics.F1(static.ResponseTimeMs()))
		t.AddRow(fmt.Sprintf("%dT balanced", th), metrics.F2(rb), fmt.Sprint(balanced.Migrations),
			metrics.F1(balanced.ResponseRate()), metrics.F1(balanced.ResponseTimeMs()))
		if rs > 0 {
			fmt.Fprintf(&summary, "%dT: exec load ratio %.2f -> %.2f (%.0f%% reduction)\n",
				th, rs, rb, 100*(rs-rb)/rs)
		}
	}
	return t.Render() + summary.String(), nil
}
