package experiments

import (
	"fmt"

	"qserve/internal/metrics"
	"qserve/internal/simserver"
	"qserve/internal/worldmap"
)

// MapStudy reproduces the paper's map-choice discussion (§4, §4.1): "we
// notice that the request processing time does not vary considerably,
// whereas the reply processing time may vary between maps by as much as
// 15% of total execution time at server saturation. We believe that this
// is due to different levels of visibility in different maps, with maps
// exhibiting higher visibility incurring higher reply processing times."
//
// It runs the sequential server at a fixed saturating load on three maps
// spanning the visibility spectrum: a large low-visibility maze, the
// standard experiment maze, and an open arena where everyone sees
// everyone.
func MapStudy(o Options) (string, error) {
	o.fill()
	type variant struct {
		label string
		build func() (*worldmap.Map, error)
	}
	variants := []variant{
		{"maze 6x6 (low visibility)", func() (*worldmap.Map, error) {
			cfg := worldmap.DefaultConfig()
			cfg.Seed = o.Seed + 1
			return worldmap.Generate(cfg)
		}},
		{"maze 4x4 (paper map)", func() (*worldmap.Map, error) {
			cfg := PaperMapConfig(o.Seed)
			return worldmap.Generate(cfg)
		}},
		{"arena (full visibility)", func() (*worldmap.Map, error) {
			cfg := worldmap.DefaultArenaConfig()
			cfg.Seed = o.Seed + 1
			return worldmap.GenerateArena(cfg)
		}},
	}

	t := metrics.Table{
		Title: "Map study (§4/§4.1): visibility drives reply processing time",
		Header: []string{
			"map", "avg visible rooms", "exec%", "reply%", "rate", "resp ms",
		},
	}
	for _, v := range variants {
		o.Progress("mapstudy: %s", v.label)
		m, err := v.build()
		if err != nil {
			return "", err
		}
		stats := m.ComputeStats()
		res, err := run(simserver.Config{
			Map:        m,
			Players:    128,
			Threads:    1,
			Sequential: true,
			DurationS:  o.DurationS,
			Seed:       o.Seed,
		})
		if err != nil {
			return "", err
		}
		t.AddRow(
			v.label,
			fmt.Sprintf("%.1f/%d", stats.AvgVisibleRooms, stats.Rooms),
			metrics.Pct(res.Avg.Percent(metrics.CompExec)),
			metrics.Pct(res.Avg.Percent(metrics.CompReply)),
			metrics.F1(res.ResponseRate()),
			metrics.F1(res.ResponseTimeMs()),
		)
	}
	return t.Render(), nil
}
