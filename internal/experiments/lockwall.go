package experiments

import (
	"fmt"
	"strings"

	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/simserver"
)

// Lockwall is the work-stealing ablation (DESIGN.md §10): the paper's
// worst case — conservative locking, 160 players, rising thread counts —
// re-run with the static request scheduler against the conflict-aware
// work-stealing scheduler. The static design hits the lock wall the
// paper measures (31% lock time at 8T plus barrier idling); stealing
// attacks both terms: a contended first acquisition parks the request
// instead of queueing on the lock, and a thread that finishes its own
// clients executes other threads' pending requests instead of idling at
// the request barrier. The summary reports the 8T lock-share reduction;
// per-client execution order is unchanged (the cross-engine conformance
// suite proves the worlds bit-identical arm for arm).
func Lockwall(o Options) (string, error) {
	o.fill()
	const players = 160
	t := metrics.Table{
		Title: fmt.Sprintf("Lock wall: static vs work-stealing request execution (%d players, conservative locking)", players),
		Header: []string{"config", "exec", "lock", "intra-wait", "inter-wait",
			"steals/s", "parks/s", "stolen%", "rate/s", "resp ms"},
	}
	var summary strings.Builder
	for _, th := range []int{2, 4, 8} {
		o.Progress("lockwall: threads=%d static", th)
		static, err := run(baseConfig(o, players, th, false, locking.Conservative{}))
		if err != nil {
			return "", err
		}
		o.Progress("lockwall: threads=%d stealing", th)
		cfg := baseConfig(o, players, th, false, locking.Conservative{})
		cfg.Stealing = true
		stolen, err := run(cfg)
		if err != nil {
			return "", err
		}
		t.AddRow(lockwallRow(fmt.Sprintf("%dT static", th), static)...)
		t.AddRow(lockwallRow(fmt.Sprintf("%dT stealing", th), stolen)...)
		if th == 8 {
			ls, lw := static.Avg.Percent(metrics.CompLock), stolen.Avg.Percent(metrics.CompLock)
			if ls > 0 {
				fmt.Fprintf(&summary, "8T lock share %s -> %s (%.0f%% reduction); response rate %.1f -> %.1f/s\n",
					metrics.Pct(ls), metrics.Pct(lw), 100*(ls-lw)/ls,
					static.ResponseRate(), stolen.ResponseRate())
			}
		}
	}
	return t.Render() + summary.String(), nil
}

// lockwallRow renders one arm: the breakdown components the lock wall is
// made of, plus the stealing counters (zero in the static arms).
func lockwallRow(label string, r *simserver.Result) []string {
	bd := r.Avg
	var steals, conflicts, execCmds int64
	for _, p := range r.PerThread {
		steals += p.Steals
		conflicts += p.StealConflicts
		execCmds += p.ExecCmds
	}
	stolenPct := 0.0
	if execCmds > 0 {
		stolenPct = 100 * float64(steals) / float64(execCmds)
	}
	return []string{
		label,
		metrics.Pct(bd.Percent(metrics.CompExec)),
		metrics.Pct(bd.Percent(metrics.CompLock)),
		metrics.Pct(bd.Percent(metrics.CompIntraWait)),
		metrics.Pct(bd.Percent(metrics.CompInterWait)),
		metrics.F1(float64(steals) / r.DurationS),
		metrics.F1(float64(conflicts) / r.DurationS),
		metrics.F1(stolenPct),
		metrics.F1(r.ResponseRate()),
		metrics.F1(r.ResponseTimeMs()),
	}
}
