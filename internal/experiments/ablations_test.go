package experiments

import (
	"strings"
	"testing"

	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/simserver"
)

func TestAblationTablesRender(t *testing.T) {
	o := quickOpts()
	for name, fn := range map[string]func(Options) (string, error){
		"assignment":  AblationAssignment,
		"batching":    AblationBatching,
		"smt":         AblationSMT,
		"granularity": AblationLockGranularity,
	} {
		out, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(out, "Ablation") || strings.Count(out, "\n") < 5 {
			t.Errorf("%s table malformed:\n%s", name, out)
		}
	}
}

func TestRegionAssignmentReducesSharing(t *testing.T) {
	o := quickOpts()
	o.DurationS = 3
	share := func(policy simserver.AssignPolicy) float64 {
		cfg := baseConfig(o, 144, 4, false, locking.Optimized{})
		cfg.Assign = policy
		res, err := run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FrameLog.SharedLeafFraction()
	}
	block := share(simserver.AssignBlock)
	region := share(simserver.AssignRegion)
	// Spatially clustered assignment must not increase cross-thread leaf
	// sharing, and typically reduces it.
	if region > block*1.1 {
		t.Errorf("region policy increased sharing: block=%.3f region=%.3f", block, region)
	}
}

func TestBatchingThickensFrames(t *testing.T) {
	o := quickOpts()
	runBatch := func(batchNs int64) *simserver.Result {
		cfg := baseConfig(o, 128, 4, false, locking.Conservative{})
		cfg.BatchDelayNs = batchNs
		res, err := run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := runBatch(0)
	batched := runBatch(1_000_000)
	if batched.Frames >= plain.Frames {
		t.Errorf("batching did not reduce frame count: %d vs %d", batched.Frames, plain.Frames)
	}
	if batched.FrameLog.RequestsPerThreadPerFrame() <= plain.FrameLog.RequestsPerThreadPerFrame() {
		t.Error("batching did not thicken frames")
	}
	// The latency cost is real: batched response time is higher.
	if batched.ResponseTimeMs() <= plain.ResponseTimeMs() {
		t.Errorf("batching should cost latency: %.1f vs %.1f",
			batched.ResponseTimeMs(), plain.ResponseTimeMs())
	}
}

func TestIdealMachineOutperformsPaperMachine(t *testing.T) {
	o := quickOpts()
	mk := func(cores int, smt, mem float64) *simserver.Result {
		cfg := baseConfig(o, 160, 8, false, locking.Optimized{})
		cfg.Machine.Cores = cores
		cfg.Machine.SMTPenalty = smt
		cfg.Machine.MemContention = mem
		res, err := run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	paper := mk(4, 1.6, 0.28)
	ideal := mk(8, 1.0, 0)
	if ideal.ResponseTimeMs() > paper.ResponseTimeMs() {
		t.Errorf("ideal machine slower than paper machine: %.1f vs %.1f",
			ideal.ResponseTimeMs(), paper.ResponseTimeMs())
	}
	// The busy time per thread must drop without contention inflation.
	if ideal.Avg.Busy() >= paper.Avg.Busy() {
		t.Errorf("ideal machine busy %.0f >= paper %.0f",
			float64(ideal.Avg.Busy()), float64(paper.Avg.Busy()))
	}
}

func TestAssignPolicyString(t *testing.T) {
	for _, p := range []simserver.AssignPolicy{
		simserver.AssignBlock, simserver.AssignRoundRobin, simserver.AssignRegion,
	} {
		if p.String() == "unknown" || p.String() == "" {
			t.Errorf("policy %d stringer broken", p)
		}
	}
	if simserver.AssignPolicy(99).String() != "unknown" {
		t.Error("unknown policy stringer")
	}
}

func TestAblationsAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate ablations are slow")
	}
	o := quickOpts()
	o.DurationS = 1
	out, err := Ablations(o)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "Ablation") < 4 {
		t.Errorf("missing ablation sections:\n%s", out)
	}
	_ = metrics.CompLock
}
