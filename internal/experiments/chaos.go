package experiments

import (
	"fmt"
	"strings"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/server"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// chaosScenario is one row of the chaos study: a fault profile and an
// optional frame budget (which arms the overload shed ladder).
type chaosScenario struct {
	name   string
	faults transport.FaultConfig
	budget time.Duration
}

// chaosResult aggregates what one scenario observed.
type chaosResult struct {
	replies   int64
	resyncs   int64
	snapshots int64
	injected  transport.FaultStats
	bd        metrics.Breakdown
	evictions int64
	shedMax   int
}

// Chaos runs the robustness study on the *live* parallel engine — real
// goroutines, the in-memory transport, and the deterministic fault
// injector between them. Unlike the simulated figures this one measures
// behavior, not time: under packet loss, reordering, duplication, and
// corruption the server must keep replying, clients must detect broken
// delta streams (BaseFrame mismatches) and resync, and under an
// artificially tight frame budget the shed ladder must engage. The
// wall-clock run is short; counters, not latencies, are the output.
func Chaos(o Options) (string, error) {
	o.fill()
	const (
		threads = 4
		numBots = 16
		steps   = 250
	)
	scenarios := []chaosScenario{
		{name: "clean"},
		{name: "loss 10%", faults: transport.FaultConfig{DropProb: 0.10}},
		{name: "chaos mix", faults: transport.FaultConfig{
			DropProb: 0.20, ReorderProb: 0.10, DupProb: 0.05, CorruptProb: 0.01}},
		{name: "overload", budget: 50 * time.Microsecond},
	}

	t := metrics.Table{
		Title: fmt.Sprintf("Chaos: live engine, %d threads, %d bots, %d client frames",
			threads, numBots, steps),
		Header: []string{"scenario", "replies", "resyncs", "inj drop", "inj corrupt",
			"shed", "replies shed", "busy rej", "evicted", "panics"},
	}
	var summary strings.Builder
	for _, sc := range scenarios {
		o.Progress("chaos: %s", sc.name)
		r, err := runChaosScenario(o, sc, threads, numBots, steps)
		if err != nil {
			return "", err
		}
		t.AddRow(sc.name,
			fmt.Sprint(r.replies),
			fmt.Sprint(r.resyncs),
			fmt.Sprint(r.injected.Dropped),
			fmt.Sprint(r.injected.Corrupted),
			fmt.Sprint(r.shedMax),
			fmt.Sprint(r.bd.RepliesShed),
			fmt.Sprint(r.bd.BusyRejects),
			fmt.Sprint(r.evictions),
			fmt.Sprint(r.bd.PanicsRecovered))
		if sc.faults.DropProb > 0 && r.snapshots == 0 {
			fmt.Fprintf(&summary, "%s: WARNING no snapshots survived\n", sc.name)
		}
		if sc.budget > 0 && r.shedMax == 0 {
			fmt.Fprintf(&summary, "%s: WARNING shed ladder never engaged\n", sc.name)
		}
	}
	return t.Render() + summary.String(), nil
}

func runChaosScenario(o Options, sc chaosScenario, threads, numBots, steps int) (*chaosResult, error) {
	mc := worldmap.DefaultConfig()
	mc.Seed = o.Seed + 1
	m := worldmap.MustGenerate(mc)
	w, err := game.NewWorld(game.Config{Map: m, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	baseNet := transport.NewNetwork(transport.NetworkConfig{QueueLen: 4096})
	faults := sc.faults
	faults.Seed = o.Seed
	fnet := transport.NewFaultNetwork(baseNet, faults.Clamped())

	conns := make([]transport.Conn, threads)
	for i := range conns {
		c, err := fnet.Listen(fmt.Sprintf("srv:%d", i))
		if err != nil {
			return nil, err
		}
		conns[i] = c
	}
	eng, err := server.NewParallel(server.Config{
		World:            w,
		Conns:            conns,
		Threads:          threads,
		Strategy:         locking.Optimized{},
		MaxClients:       numBots + 4,
		SelectTimeout:    2 * time.Millisecond,
		FrameBudget:      sc.budget,
		WatchdogDeadline: 250 * time.Millisecond,
		QuarantineWedged: true,
	})
	if err != nil {
		return nil, err
	}
	eng.Start()
	defer eng.Stop()

	bots := make([]*botclient.Bot, 0, numBots)
	for i := 0; i < numBots; i++ {
		bc, err := fnet.Listen(fmt.Sprintf("bot:%d", i))
		if err != nil {
			return nil, err
		}
		bot, err := botclient.New(botclient.Config{
			Name:   fmt.Sprintf("chaos-%d", i),
			Conn:   bc,
			Server: transport.MemAddr("srv:0"),
			Map:    m,
			Seed:   o.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		if err := bot.Connect(); err != nil {
			// Under heavy loss a handshake can exhaust its retries; the
			// study continues with the bots that made it in.
			continue
		}
		bots = append(bots, bot)
	}
	if len(bots) == 0 {
		return nil, fmt.Errorf("chaos %s: no bot could connect", sc.name)
	}

	res := &chaosResult{}
	for f := 0; f < steps; f++ {
		for _, b := range bots {
			b.Step()
		}
		if lvl := eng.ShedLevel(); lvl > res.shedMax {
			res.shedMax = lvl
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	for _, b := range bots {
		b.Step()
	}
	eng.Stop()

	for _, b := range bots {
		res.replies += b.Resp.Replies
		res.resyncs += b.Resyncs
		res.snapshots += b.Snapshots
	}
	res.injected = fnet.Stats()
	res.evictions = eng.FaultEvictions()
	res.bd = sumCounters(eng.Breakdowns())
	return res, nil
}

// sumCounters folds per-thread breakdowns into totals of the robustness
// counters (time components are irrelevant to the chaos table).
func sumCounters(bds []metrics.Breakdown) metrics.Breakdown {
	var out metrics.Breakdown
	for _, bd := range bds {
		out.RepliesShed += bd.RepliesShed
		out.EntitiesCapped += bd.EntitiesCapped
		out.BusyRejects += bd.BusyRejects
		out.PanicsRecovered += bd.PanicsRecovered
		out.WedgesDetected += bd.WedgesDetected
		out.MuxDrops += bd.MuxDrops
	}
	return out
}
