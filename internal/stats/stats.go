// Package stats provides the small statistical helpers the benchmark
// harness and metrics layer use: accumulators, percentiles, and series
// formatting.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Welford is an online mean/variance accumulator, suitable for long runs
// where storing every sample would be wasteful.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// Min returns the smallest sample seen (0 if none).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample seen (0 if none).
func (w *Welford) Max() float64 { return w.max }

// Merge combines another accumulator into this one (parallel reduction).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	mean := w.mean + d*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	mn, mx := w.min, w.max
	if o.min < mn {
		mn = o.min
	}
	if o.max > mx {
		mx = o.max
	}
	*w = Welford{n: n, mean: mean, m2: m2, min: mn, max: mx}
}
