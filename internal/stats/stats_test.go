package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/singleton cases wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 50: 3, 100: 5, 25: 2, 75: 4}
	for p, want := range cases {
		if got := Percentile(xs, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Error("singleton percentile")
	}
	// Input must not be mutated (sorted copy).
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.NormFloat64()*10 + 5
			w.Add(xs[i])
		}
		return math.Abs(w.Mean()-Mean(xs)) < 1e-9 &&
			math.Abs(w.StdDev()-StdDev(xs)) < 1e-9 &&
			w.N() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMinMax(t *testing.T) {
	var w Welford
	for _, x := range []float64{5, -2, 9, 3} {
		w.Add(x)
	}
	if w.Min() != -2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordMerge(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	xs := make([]float64, 500)
	var whole, a, b Welford
	for i := range xs {
		xs[i] = r.Float64() * 100
		whole.Add(xs[i])
		if i%2 == 0 {
			a.Add(xs[i])
		} else {
			b.Add(xs[i])
		}
	}
	a.Merge(b)
	if a.N() != whole.N() ||
		math.Abs(a.Mean()-whole.Mean()) > 1e-9 ||
		math.Abs(a.StdDev()-whole.StdDev()) > 1e-9 ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merge mismatch: %+v vs %+v", a, whole)
	}
	// Merging into/with empty.
	var empty Welford
	empty.Merge(a)
	if empty.N() != a.N() || empty.Mean() != a.Mean() {
		t.Error("merge into empty failed")
	}
	before := a
	a.Merge(Welford{})
	if a != before {
		t.Error("merge of empty changed state")
	}
}
