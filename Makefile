GO ?= go

.PHONY: all build test race vet bench conformance cover ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector, including the
# stress tests written to provoke cross-thread hazards
# (internal/server/race_test.go, with and without per-frame migration).
race:
	$(GO) test -race ./...

# bench smoke-checks the reply-phase allocation benchmark; the pooled
# variant must stay at 0 allocs/op (CI enforces this as a hard gate).
bench:
	$(GO) test -run=NONE -bench=BenchmarkReplyPhaseAllocs -benchmem -benchtime=100x .

# conformance proves the three engines compute the same game, with the
# load balancer off and with migration forced every frame.
conformance:
	$(GO) test -race -v -run 'TestCrossEngineConformance' ./internal/conformance/

# cover prints the per-function coverage table's total line.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

ci: vet build race bench conformance
