GO ?= go

.PHONY: all build test race vet bench vis conformance chaos cover lint lockwall replay durability ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector, including the
# stress tests written to provoke cross-thread hazards
# (internal/server/race_test.go, with and without per-frame migration).
race:
	$(GO) test -race ./...

# bench smoke-checks the reply-phase allocation benchmark; the pooled
# and indexed variants must stay at 0 allocs/op (CI enforces this as a
# hard gate).
bench:
	$(GO) test -run=NONE -bench=BenchmarkReplyPhaseAllocs -benchmem -benchtime=100x .
	$(GO) test -run=NONE -bench=BenchmarkFaultConnPassthrough -benchmem -benchtime=1000x ./internal/transport/

# vis runs the frame-coherent interest-management acceptance set: the
# randomized byte-identity property suite (indexed vs naive snapshots,
# including the concurrent-build race proof) plus the snapshot-assembly
# and index-build benchmarks.
vis:
	$(GO) test -race -v -run 'TestVisIndex|TestVisBuilder|TestGoldenReplyStream' ./internal/game/ ./internal/server/
	$(GO) test -run=NONE -bench='BenchmarkBuildSnapshot|BenchmarkVisIndexBuild' -benchmem .

# conformance proves the three engines compute the same game, with the
# load balancer off and with migration forced every frame.
conformance:
	$(GO) test -race -v -run 'TestCrossEngineConformance' ./internal/conformance/

# chaos runs the robustness acceptance suite under the race detector:
# the fault-injected soak (loss/reorder/dup/corruption plus an injected
# panic), the watchdog quarantine, panic containment, the overload shed
# ladder, and graceful shutdown.
chaos:
	$(GO) test -race -v -run 'TestChaosSoak|TestWatchdog|TestPanicContainment|TestOverloadShedLadder|TestGracefulShutdown|TestFrameCtl' ./internal/server/
	$(GO) test -race -run 'TestDecodeSurvivesFaultInjector|Fuzz' ./internal/protocol/

# lockwall runs the work-stealing ablation (DESIGN.md §10): the paper's
# worst case — conservative locking, 160 players, 2/4/8 threads — with
# the static per-owner request scheduler vs the conflict-aware
# work-stealing scheduler, reporting the 8T lock-share reduction.
lockwall:
	$(GO) run ./cmd/qbench -exp lockwall -dur 5

# replay runs the deterministic record/replay acceptance set
# (DESIGN.md §11): bit-identity of a session recorded on parallel 8T
# (balance+stealing) replayed across sequential, parallel {2,4,8}T, and
# DES; the delta-debugging shrinker; the static determinism audit; the
# log-decoder fuzz seeds; the checked-in minimal-repro regression; and
# the recorder overhead gates (0 allocs/op, <5% of move cost).
replay:
	$(GO) test -race -v -run 'TestRecordSession|TestReplayBit|TestReplayDES|TestReplayWith|TestReplayIs|TestShrink|TestMinimalLog|TestChaosSoakReplay|TestDeterminismAudit|TestEncodeDecode|TestDecodeRejects|TestValidateCatches|TestRecorderZeroAllocs|FuzzDecodeLog' ./internal/replay/
	$(GO) test -race -v -run 'TestRecordReplayConformance' ./internal/conformance/
	$(GO) test -v -run 'TestRecorderOverheadBudget' ./internal/replay/
	$(GO) test -run=NONE -bench=BenchmarkRecorderOverhead -benchmem -benchtime=10000x ./internal/replay/

# durability runs the crash-recovery acceptance set (DESIGN.md §12):
# the kill -9 chaos soak (recovery from checkpoint + torn redo tail,
# digest-exact against from-genesis replay on every engine, live restart
# with survivor reconnect), the reconnect handshake matrix, the format /
# recovery unit suites with a decoder fuzz smoke, and the two overhead
# gates — the capture path must stay at 0 allocs/op and the per-capture
# charge under 2% of the frame budget on the deterministic DES clock.
durability:
	$(GO) test -race -v -run 'TestCrashRecoverySoak' ./internal/replay/
	$(GO) test -race -v -run 'TestReconnect|TestParkedClientsReaped' ./internal/server/
	$(GO) test -race -run 'TestWriter|TestMerge|TestDecode|TestEncodeDecodeIdentity|TestLoadLatest|TestRestoredWorld|TestFileNameParse|FuzzDecodeCheckpoint' ./internal/checkpoint/
	$(GO) test -race -run 'TestDigestMatchesReplay|TestRecoverCrossEngine|TestRecoverDES|TestStreamRecorder|TestDecodePrefixTorn' ./internal/replay/
	$(GO) test -fuzz=FuzzDecodeCheckpoint -fuzztime=10s -run=NONE ./internal/checkpoint/
	$(GO) test -v -run 'TestWriterCaptureAllocs' ./internal/checkpoint/
	$(GO) test -v -run 'TestCheckpointOverheadDES' ./internal/simserver/
	$(GO) test -run=NONE -bench=BenchmarkWriterCapture -benchmem -benchtime=100x ./internal/checkpoint/

# cover prints the per-function coverage table's total line.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# lint builds the repo's own static analyzers (tools/qvet — a separate
# module, so the engine itself stays stdlib-only) and runs them over the
# tree: lock-guard discipline, frame-phase call compatibility, atomic
# field hygiene, //qvet:noalloc escape gates, and annotation rot. The
# final guard proves the tools module's dependencies never leak into the
# engine's go.mod.
lint:
	$(GO) build -C tools -o bin/qvet ./qvet
	@n=$$(./tools/bin/qvet -list | wc -l); \
		[ "$$n" -eq 9 ] || \
		{ echo "lint: qvet suite has $$n analyzers, expected 9 (did a registry edit drop one?)"; exit 1; }
	./tools/bin/qvet ./...
	@! grep -E '^(require|replace)' go.mod || \
		{ echo 'lint: root go.mod must stay dependency-free (tool deps live in tools/go.mod)'; exit 1; }

# instancing runs the match-manager acceptance set: cross-instance
# digest isolation and panic eviction under -race, the fleet tail gate
# (1000 idle + 8 active matches, active p99 bounded, shared scratch
# pool bounded), the dispatch 0 allocs/op gate, and the scheduler
# benchmark.
instancing:
	$(GO) test -race -run 'TestCrossInstanceDigestIsolation|TestEvictionIsolation|TestLobbyRoutesAndAssigns|TestIdleMatchesShareScratch|TestPokeSchedulesPromptly' ./internal/match/
	$(GO) test -v -run 'TestSchedulerDispatchZeroAllocs|TestMatchManagerTailGate' ./internal/match/
	$(GO) test -run=NONE -bench=BenchmarkMatchManager -benchmem -benchtime=10000x ./internal/match/

ci: vet build lint race bench conformance chaos replay durability instancing
