GO ?= go

.PHONY: all build test race vet bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector, including the
# stress test written to provoke cross-thread hazards
# (internal/server/race_test.go).
race:
	$(GO) test -race ./...

# bench smoke-checks the reply-phase allocation benchmark; the pooled
# variant must stay at 0 allocs/op.
bench:
	$(GO) test -run=NONE -bench=BenchmarkReplyPhaseAllocs -benchmem -benchtime=100x .

ci: vet build race bench
