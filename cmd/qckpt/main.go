// qckpt operates on durable world checkpoints (.qck files, produced by
// qserved -checkpoint or the checkpoint package): inspect a file or a
// checkpoint directory, verify integrity and digests, diff two
// checkpoints, or convert one into a header-only replay seed log.
//
// Usage:
//
//	qckpt inspect [-clients] <ckpt.qck | dir>
//	qckpt verify <ckpt.qck | dir>
//	qckpt diff <a.qck> <b.qck>
//	qckpt seed [-o seed.qrl] <ckpt.qck | dir>
//
// inspect prints the header, counters, and section sizes; with a
// directory it lists every checkpoint file and summarizes the newest
// recoverable image. Delta checkpoints are resolved against their base
// full image in the same directory wherever a merged view is needed.
//
// verify decodes, validates, and digest-checks every named checkpoint
// (the whole directory when given a dir) and exits non-zero if any file
// is corrupt — the offline counterpart of the recovery path's
// corrupt-skip fallback.
//
// diff compares two checkpoints entity by entity and client by client —
// useful for asking "what changed between these two recovery points".
//
// seed writes a header-only .qrl carrying the checkpoint's map and
// world seed: the recording lineage for a restarted server, so a redo
// log recorded after -restore shares the session's exact header.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"qserve/internal/checkpoint"
	"qserve/internal/replay"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "inspect":
		cmdInspect(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "seed":
		cmdSeed(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qckpt <inspect|verify|diff|seed> [flags] <ckpt.qck | dir> ...")
	os.Exit(2)
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// loadResolved reads the checkpoint at path and, for a delta, merges it
// with its base full image found in the same directory, so the caller
// always gets a complete world image.
func loadResolved(path string) (*checkpoint.Checkpoint, error) {
	ck, err := checkpoint.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if ck.Full {
		return ck, nil
	}
	basePath := filepath.Join(filepath.Dir(path), checkpoint.FileName(ck.BaseFrame, true))
	base, err := checkpoint.ReadFile(basePath)
	if err != nil {
		return nil, fmt.Errorf("delta frame %d: base image %s: %w", ck.Frame, basePath, err)
	}
	return checkpoint.Merge(base, ck)
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	clients := fs.Bool("clients", false, "also list the checkpointed clients")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	if isDir(path) {
		files, err := checkpoint.ListDir(path)
		if err != nil {
			fatal(err)
		}
		if len(files) == 0 {
			fatal(fmt.Errorf("no checkpoint files in %s", path))
		}
		for _, fi := range files {
			kind := "delta"
			if fi.Full {
				kind = "full "
			}
			size := int64(0)
			if st, err := os.Stat(fi.Path); err == nil {
				size = st.Size()
			}
			fmt.Printf("%s  frame %8d  %s  %7d bytes\n", kind, fi.Frame, filepath.Base(fi.Path), size)
		}
		ck, err := checkpoint.LoadLatest(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("newest recoverable image:\n")
		printCheckpoint(ck, *clients)
		return
	}
	ck, err := checkpoint.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	printCheckpoint(ck, *clients)
}

func printCheckpoint(ck *checkpoint.Checkpoint, clients bool) {
	kind := "full"
	if !ck.Full {
		kind = fmt.Sprintf("delta (base frame %d)", ck.BaseFrame)
	}
	fmt.Printf("  %s checkpoint, frame %d, world time %.3fs\n", kind, ck.Frame, ck.WorldTime)
	fmt.Printf("  map %q (%d rooms), world seed %d, proto v%d\n",
		ck.Map.Name, len(ck.Map.Rooms), ck.WorldSeed, ck.ProtoVer)
	fmt.Printf("  entity table: %d/%d high water, tree depth %d, spawn cursor %d\n",
		ck.HighWater, ck.Capacity, ck.TreeDepth, ck.SpawnCursor)
	fmt.Printf("  sections: %d entities, %d gone, %d free, %d clients\n",
		len(ck.Entities), len(ck.Gone), len(ck.Free), len(ck.Clients))
	fmt.Printf("  counters: next client id %d, join idx %d, redo-log cut %d items\n",
		ck.NextClientID, ck.JoinIdx, ck.RecItems)
	fmt.Printf("  digest %016x", ck.Digest)
	if ck.Full {
		if err := ck.VerifyDigest(); err != nil {
			fmt.Printf(" (MISMATCH: %v)", err)
		} else {
			fmt.Printf(" (verified)")
		}
	} else {
		fmt.Printf(" (post-merge; verify against the base image)")
	}
	fmt.Println()
	if clients {
		for i := range ck.Clients {
			c := &ck.Clients[i]
			fmt.Printf("  client %3d %-16q ent %4d thread %d lastSeq %6d replied %6d addr %q (%d baseline ents)\n",
				c.ID, c.Name, c.EntID, c.Thread, c.LastSeq, c.RepliedFrame, c.Addr, len(c.Baseline))
		}
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	paths := []string{path}
	if isDir(path) {
		files, err := checkpoint.ListDir(path)
		if err != nil {
			fatal(err)
		}
		if len(files) == 0 {
			fatal(fmt.Errorf("no checkpoint files in %s", path))
		}
		paths = paths[:0]
		for _, fi := range files {
			paths = append(paths, fi.Path)
		}
	}
	bad := 0
	for _, p := range paths {
		ck, err := loadResolved(p)
		if err == nil {
			err = ck.VerifyDigest()
		}
		if err != nil {
			bad++
			fmt.Printf("%-40s CORRUPT: %v\n", filepath.Base(p), err)
			continue
		}
		fmt.Printf("%-40s ok: frame %d, %d entities, %d clients, digest %016x\n",
			filepath.Base(p), ck.Frame, len(ck.Entities), len(ck.Clients), ck.Digest)
	}
	if bad > 0 {
		fatal(fmt.Errorf("%d of %d checkpoints failed verification", bad, len(paths)))
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	a, err := loadResolved(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := loadResolved(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("a: frame %d, %d entities, %d clients, digest %016x\n",
		a.Frame, len(a.Entities), len(a.Clients), a.Digest)
	fmt.Printf("b: frame %d, %d entities, %d clients, digest %016x\n",
		b.Frame, len(b.Entities), len(b.Clients), b.Digest)
	if a.WorldSeed != b.WorldSeed || a.Map.Name != b.Map.Name {
		fmt.Printf("DIFFERENT SESSIONS: seed %d/%d, map %q/%q\n",
			a.WorldSeed, b.WorldSeed, a.Map.Name, b.Map.Name)
	}
	if a.Digest == b.Digest && a.Frame == b.Frame {
		fmt.Println("identical world state")
		return
	}

	ae := entsByID(a)
	be := entsByID(b)
	var added, removed, changed int
	for id, er := range be {
		ar, ok := ae[id]
		switch {
		case !ok:
			added++
			fmt.Printf("+ entity %d class %d at (%.1f %.1f %.1f)\n",
				id, er.Class, er.Origin.X, er.Origin.Y, er.Origin.Z)
		case *ar != *er:
			changed++
			fmt.Printf("~ entity %d: %s\n", id, describeEntDiff(ar, er))
		}
	}
	for id, ar := range ae {
		if _, ok := be[id]; !ok {
			removed++
			fmt.Printf("- entity %d class %d\n", id, ar.Class)
		}
	}
	ac := clientsByID(a)
	bc := clientsByID(b)
	for id, cr := range bc {
		prev, ok := ac[id]
		switch {
		case !ok:
			fmt.Printf("+ client %d %q ent %d\n", id, cr.Name, cr.EntID)
		case prev.EntID != cr.EntID || prev.Thread != cr.Thread || prev.LastSeq != cr.LastSeq:
			fmt.Printf("~ client %d %q: ent %d→%d thread %d→%d lastSeq %d→%d\n",
				id, cr.Name, prev.EntID, cr.EntID, prev.Thread, cr.Thread, prev.LastSeq, cr.LastSeq)
		}
	}
	for id, cr := range ac {
		if _, ok := bc[id]; !ok {
			fmt.Printf("- client %d %q\n", id, cr.Name)
		}
	}
	fmt.Printf("%d entities added, %d removed, %d changed across %d frames\n",
		added, removed, changed, int64(b.Frame)-int64(a.Frame))
}

func entsByID(ck *checkpoint.Checkpoint) map[uint32]*checkpoint.EntityRec {
	m := make(map[uint32]*checkpoint.EntityRec, len(ck.Entities))
	for i := range ck.Entities {
		m[ck.Entities[i].ID] = &ck.Entities[i]
	}
	return m
}

func clientsByID(ck *checkpoint.Checkpoint) map[uint16]*checkpoint.ClientRec {
	m := make(map[uint16]*checkpoint.ClientRec, len(ck.Clients))
	for i := range ck.Clients {
		m[ck.Clients[i].ID] = &ck.Clients[i]
	}
	return m
}

// describeEntDiff names the fields that differ between two entity
// records — enough to orient, not a full dump.
func describeEntDiff(a, b *checkpoint.EntityRec) string {
	var out []byte
	add := func(s string) {
		if len(out) > 0 {
			out = append(out, ' ')
		}
		out = append(out, s...)
	}
	if a.Origin != b.Origin {
		add(fmt.Sprintf("pos (%.1f %.1f %.1f)→(%.1f %.1f %.1f)",
			a.Origin.X, a.Origin.Y, a.Origin.Z, b.Origin.X, b.Origin.Y, b.Origin.Z))
	}
	if a.Health != b.Health {
		add(fmt.Sprintf("health %d→%d", a.Health, b.Health))
	}
	if a.Armor != b.Armor {
		add(fmt.Sprintf("armor %d→%d", a.Armor, b.Armor))
	}
	if a.Frags != b.Frags {
		add(fmt.Sprintf("frags %d→%d", a.Frags, b.Frags))
	}
	if a.Deaths != b.Deaths {
		add(fmt.Sprintf("deaths %d→%d", a.Deaths, b.Deaths))
	}
	if a.Weapon != b.Weapon || a.Weapons != b.Weapons || a.Ammo != b.Ammo {
		add(fmt.Sprintf("weapon %d/%04x/%d→%d/%04x/%d",
			a.Weapon, a.Weapons, a.Ammo, b.Weapon, b.Weapons, b.Ammo))
	}
	if a.RoomID != b.RoomID {
		add(fmt.Sprintf("room %d→%d", a.RoomID, b.RoomID))
	}
	if len(out) == 0 {
		return "other fields"
	}
	return string(out)
}

func cmdSeed(args []string) {
	fs := flag.NewFlagSet("seed", flag.ExitOnError)
	out := fs.String("o", "seed.qrl", "output path for the seed log")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	var (
		ck  *checkpoint.Checkpoint
		err error
	)
	if isDir(path) {
		ck, err = checkpoint.LoadLatest(path)
	} else {
		ck, err = loadResolved(path)
	}
	if err != nil {
		fatal(err)
	}
	lg := &replay.Log{WorldSeed: ck.WorldSeed, ProtoVer: ck.ProtoVer, Map: ck.Map}
	if err := lg.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: empty redo log for map %q seed %d (checkpoint frame %d)\n",
		*out, ck.Map.Name, ck.WorldSeed, ck.Frame)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qckpt:", err)
	os.Exit(1)
}
