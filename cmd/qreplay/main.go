// qreplay operates on recorded session logs (.qrl files, produced by
// qserved -record or the replay package): verify a log's integrity,
// re-run it bit-identically through any engine, shrink a failing log to
// a minimal reproducer, or dump its record stream.
//
// Usage:
//
//	qreplay verify session.qrl
//	qreplay replay [-threads N] [-balance] [-steal] [-des] [-all] session.qrl
//	qreplay shrink [-health N] [-o minimal.qrl] session.qrl
//	qreplay dump [-n N] session.qrl
//
// replay re-runs the log and reports the entity-table and reply-stream
// digests plus whether they match the digest recorded at capture time.
// -all sweeps the full engine matrix (sequential, parallel {2,4,8}T ×
// balance × stealing, DES) and fails unless every engine agrees.
//
// shrink delta-debugs the log against a failure predicate — by default
// "some player ends at or below -health hit points" — and writes the
// minimal log that still reproduces it.
package main

import (
	"flag"
	"fmt"
	"os"

	"qserve/internal/entity"
	"qserve/internal/replay"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "verify":
		cmdVerify(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "shrink":
		cmdShrink(os.Args[2:])
	case "dump":
		cmdDump(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qreplay <verify|replay|shrink|dump> [flags] <session.qrl>")
	os.Exit(2)
}

func load(fs *flag.FlagSet) *replay.Log {
	if fs.NArg() != 1 {
		usage()
	}
	lg, err := replay.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	return lg
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	lg := load(fs)
	if err := lg.Validate(); err != nil {
		fatal(err)
	}
	fmt.Printf("ok: %d items (%d moves, %d ticks, %d clients), map %q, seed %d\n",
		len(lg.Items), lg.Moves(), lg.Ticks(), len(lg.Clients()), lg.Map.Name, lg.WorldSeed)
	if lg.HasEnd {
		fmt.Printf("end record: %d frames, world digest %016x\n", lg.EndFrames, lg.EndDigest)
	} else {
		fmt.Println("no end record (session was not finished cleanly)")
	}
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	threads := fs.Int("threads", 0, "engine threads (0 = sequential)")
	bal := fs.Bool("balance", false, "forced per-frame balancing")
	steal := fs.Bool("steal", false, "work-stealing request execution")
	des := fs.Bool("des", false, "replay on the discrete-event engine instead of live")
	all := fs.Bool("all", false, "sweep the full engine matrix and require bit-identity")
	fs.Parse(args)
	lg := load(fs)

	if *all {
		sweep(lg)
		return
	}
	lc := replay.LiveConfig{Threads: *threads, Balance: *bal, Stealing: *steal}
	var (
		res *replay.Result
		err error
	)
	if *des {
		res, err = replay.ReplayDES(lg, lc)
	} else {
		res, err = replay.ReplayLive(lg, lc)
	}
	if err != nil {
		fatal(err)
	}
	report(res, *des)
}

func sweep(lg *replay.Log) {
	ref, err := replay.ReplayLive(lg, replay.LiveConfig{Threads: 0})
	if err != nil {
		fatal(fmt.Errorf("sequential reference: %w", err))
	}
	report(ref, false)
	bad := 0
	for _, threads := range []int{2, 4, 8} {
		for _, bal := range []bool{false, true} {
			for _, steal := range []bool{false, true} {
				lc := replay.LiveConfig{Threads: threads, Balance: bal, Stealing: steal}
				res, err := replay.ReplayLive(lg, lc)
				if err != nil {
					fatal(fmt.Errorf("%s: %w", lc, err))
				}
				ok := res.TableDigest == ref.TableDigest && res.StreamDigest == ref.StreamDigest
				if !ok {
					bad++
				}
				fmt.Printf("%-44s table %016x stream %016x %s\n",
					lc, res.TableDigest, res.StreamDigest, mark(ok))
				dres, err := replay.ReplayDES(lg, lc)
				if err != nil {
					fatal(fmt.Errorf("des %s: %w", lc, err))
				}
				ok = dres.TableDigest == ref.TableDigest
				if !ok {
					bad++
				}
				fmt.Printf("des/%-40s table %016x %s\n", lc, dres.TableDigest, mark(ok))
			}
		}
	}
	if bad > 0 {
		fatal(fmt.Errorf("%d engine configurations diverged from the sequential reference", bad))
	}
	fmt.Println("all engines bit-identical")
}

func mark(ok bool) string {
	if ok {
		return "ok"
	}
	return "DIVERGED"
}

func report(res *replay.Result, des bool) {
	fmt.Printf("engine %s: %d moves, %d ticks, table digest %016x", res.Config, res.Moves, res.Ticks, res.TableDigest)
	if !des {
		fmt.Printf(", stream digest %016x (%d replies)", res.StreamDigest, res.Replies)
	}
	fmt.Println()
	if res.EndDigestMatch {
		fmt.Println("matches the digest recorded at capture time")
	} else {
		fmt.Println("does NOT match the recorded end digest (free-running capture, truncated, or diverged)")
	}
}

func cmdShrink(args []string) {
	fs := flag.NewFlagSet("shrink", flag.ExitOnError)
	health := fs.Int("health", 99, "failure predicate: some player ends with at most this health")
	out := fs.String("o", "minimal.qrl", "output path for the shrunk log")
	fs.Parse(args)
	lg := load(fs)

	pred := func(cand *replay.Log) bool {
		res, err := replay.ReplayLive(cand, replay.LiveConfig{Threads: 0})
		if err != nil {
			return false
		}
		hit := false
		res.World.Ents.ForEachClass(entity.ClassPlayer, func(e *entity.Entity) {
			if e.Health <= *health {
				hit = true
			}
		})
		return hit
	}
	shrunk, err := replay.Shrink(lg, pred)
	if err != nil {
		fatal(err)
	}
	if err := shrunk.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("shrunk %d items → %d (%d→%d ticks, %d→%d moves), wrote %s\n",
		len(lg.Items), len(shrunk.Items), lg.Ticks(), shrunk.Ticks(),
		lg.Moves(), shrunk.Moves(), *out)
}

func cmdDump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	limit := fs.Int("n", 0, "dump at most this many items (0 = all)")
	fs.Parse(args)
	lg := load(fs)
	fmt.Printf("map %q seed %d proto v%d, %d items\n", lg.Map.Name, lg.WorldSeed, lg.ProtoVer, len(lg.Items))
	for i := range lg.Items {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... %d more\n", len(lg.Items)-i)
			break
		}
		it := &lg.Items[i]
		switch it.Kind {
		case replay.KindTick:
			fmt.Printf("%6d tick dt=%.3fms\n", i, float64(it.DtNs)/1e6)
		case replay.KindMove:
			fmt.Printf("%6d move client=%d seq=%d fwd=%d side=%d yaw=%d buttons=%02x impulse=%d\n",
				i, it.Client, it.Seq, it.Cmd.Forward, it.Cmd.Side, it.Cmd.Yaw, it.Cmd.Buttons, it.Cmd.Impulse)
		case replay.KindConnect:
			fmt.Printf("%6d connect client=%d ent=%d thread=%d name=%q\n", i, it.Client, it.Ent, it.Thread, it.Name)
		case replay.KindDisconnect:
			fmt.Printf("%6d disconnect client=%d reason=%d\n", i, it.Client, it.Reason)
		case replay.KindMigrate:
			fmt.Printf("%6d migrate client=%d to=%d\n", i, it.Client, it.To)
		case replay.KindShed:
			fmt.Printf("%6d shed level=%d\n", i, it.Level)
		case replay.KindFrame:
			fmt.Printf("%6d frame %d\n", i, it.Frame)
		}
	}
	if lg.HasEnd {
		fmt.Printf("   end frames=%d digest=%016x\n", lg.EndFrames, lg.EndDigest)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qreplay:", err)
	os.Exit(1)
}
