// qbench regenerates the paper's evaluation: every table and figure of
// "Parallelization and Performance of Interactive Multiplayer Game
// Servers" (IPPS 2004), on the simulated machine. Output is plain-text
// tables with the same rows/series the paper plots.
//
// Usage:
//
//	qbench                  # run everything (the full reproduction)
//	qbench -exp fig5        # one experiment: table1, fig1..fig7c,
//	                        # imbalance, coverage, wait, saturation
//	qbench -dur 120         # paper-length two-minute virtual runs
//	qbench -o EXPERIMENTS.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qserve/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig1, fig2, fig3, fig4, fig5, fig6, fig7a, fig7b, fig7c, imbalance, coverage, wait, saturation, ablations, mapstudy, visibility, balance, chaos, lockwall, durability, instancing")
	dur := flag.Float64("dur", 10, "virtual seconds per configuration (paper: 120)")
	seed := flag.Int64("seed", 1, "experiment seed")
	out := flag.String("o", "", "also write the report to this file")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	opts := experiments.Options{DurationS: *dur, Seed: *seed}
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "... "+format+"\n", args...)
		}
	}

	var report string
	var err error
	switch strings.ToLower(*exp) {
	case "all":
		report, err = experiments.All(opts)
	case "table1":
		report = experiments.Table1()
	case "fig1":
		report, err = experiments.Fig1(opts)
	case "fig2":
		report, err = experiments.Fig2(opts)
	case "fig3":
		report, err = experiments.Fig3(opts)
	case "fig4":
		report, err = experiments.Fig4(opts)
	case "fig5":
		report, err = experiments.Fig5(opts)
	case "fig6":
		report, err = experiments.Fig6(opts)
	case "fig7a":
		report, err = experiments.Fig7a(opts)
	case "fig7b":
		report, err = experiments.Fig7b(opts)
	case "fig7c":
		report, err = experiments.Fig7c(opts)
	case "imbalance":
		report, err = experiments.Imbalance(opts)
	case "coverage":
		report, err = experiments.Coverage(opts)
	case "wait":
		report, err = experiments.WaitAnalysis(opts)
	case "saturation":
		report, err = experiments.Saturation(opts)
	case "ablations":
		report, err = experiments.Ablations(opts)
	case "mapstudy":
		report, err = experiments.MapStudy(opts)
	case "visibility":
		report, err = experiments.Visibility(opts)
	case "balance":
		report, err = experiments.Balance(opts)
	case "chaos":
		report, err = experiments.Chaos(opts)
	case "lockwall":
		report, err = experiments.Lockwall(opts)
	case "durability":
		report, err = experiments.Durability(opts)
	case "instancing":
		report, err = experiments.Instancing(opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
