// qbot drives a fleet of automatic players against a live qserved
// instance over UDP — the client side of the paper's testbed, where
// "a number of dual-processor systems" ran scripted clients.
//
// Usage:
//
//	qbot -server 127.0.0.1:27500 -n 32 -t 60s -mapseed 1
//
// The bots regenerate the same map the server uses (same seed) for
// waypoint navigation, connect, play for the duration, and report the
// aggregate response rate and response time.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/metrics"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

func main() {
	serverAddr := flag.String("server", "127.0.0.1:27500", "server base address")
	n := flag.Int("n", 16, "number of bots")
	dur := flag.Duration("t", 30*time.Second, "play duration")
	mapPath := flag.String("map", "", "map file; empty regenerates from -mapseed")
	mapSeed := flag.Int64("mapseed", 1, "seed matching the server's map")
	frameMs := flag.Int("framems", 33, "client frame duration (ms)")
	matchName := flag.String("match", "", "match to join on an instancing server (-matches); empty lets the lobby assign one")
	flag.Parse()

	m, err := loadMap(*mapPath, *mapSeed)
	if err != nil {
		fatal(err)
	}

	bots := make([]*botclient.Bot, 0, *n)
	for i := 0; i < *n; i++ {
		conn, err := transport.ListenUDP("0.0.0.0:0")
		if err != nil {
			fatal(err)
		}
		srv, err := transport.ResolveLike(conn, *serverAddr)
		if err != nil {
			fatal(err)
		}
		bot, err := botclient.New(botclient.Config{
			Name:    fmt.Sprintf("bot-%02d", i),
			Conn:    conn,
			Server:  srv,
			Map:     m,
			FrameMs: *frameMs,
			Seed:    int64(i + 1),
			Match:   *matchName,
		})
		if err != nil {
			fatal(err)
		}
		if err := bot.Connect(); err != nil {
			fatal(fmt.Errorf("bot %d: %w", i, err))
		}
		bots = append(bots, bot)
	}
	fmt.Printf("qbot: %d bots connected to %s, playing for %s\n", len(bots), *serverAddr, *dur)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, b := range bots {
		wg.Add(1)
		go func(b *botclient.Bot) {
			defer wg.Done()
			b.Run(stop)
		}(b)
	}
	time.Sleep(*dur)
	close(stop)
	wg.Wait()

	var agg metrics.ResponseStats
	var kills, deaths, snapshots int64
	for _, b := range bots {
		agg.Merge(b.Resp)
		kills += b.Kills
		deaths += b.Deaths
		snapshots += b.Snapshots
	}
	fmt.Printf("snapshots=%d kills=%d deaths=%d\n", snapshots, kills, deaths)
	fmt.Printf("response rate: %.1f replies/s across all bots\n",
		float64(agg.Replies)/dur.Seconds())
	fmt.Printf("response time: mean %.1fms (min %.1f, max %.1f)\n",
		agg.MeanLatencyMs(), agg.Latency.Min()*1000, agg.Latency.Max()*1000)
}

func loadMap(path string, seed int64) (*worldmap.Map, error) {
	if path != "" {
		return worldmap.LoadFile(path)
	}
	cfg := worldmap.DefaultConfig()
	cfg.Seed = seed
	return worldmap.Generate(cfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qbot:", err)
	os.Exit(1)
}
