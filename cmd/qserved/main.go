// qserved is the live game server daemon. It hosts a deathmatch session
// over real UDP sockets using either the sequential engine or the
// multithreaded engine with region locking — the deployable counterpart
// of the simulated experiments.
//
// Usage:
//
//	qserved -addr 127.0.0.1:27500 -threads 4 -locking optimized
//
// A server with N threads listens on N consecutive UDP ports starting at
// the given address: "a server appears to clients as one IP address and
// a range of UDP ports". Clients connect to the base port and are told
// their assigned port in the Accept reply. Stop with SIGINT/SIGTERM; the
// server prints its execution-time breakdown on exit.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"qserve/internal/balance"
	"qserve/internal/checkpoint"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/match"
	"qserve/internal/metrics"
	"qserve/internal/replay"
	"qserve/internal/server"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:27500", "base UDP address")
	threads := flag.Int("threads", 1, "server threads (0 = sequential engine)")
	lockMode := flag.String("locking", "conservative", "locking strategy: conservative or optimized")
	maxClients := flag.Int("maxclients", 128, "maximum simultaneous players")
	mapPath := flag.String("map", "", "map file (JSON, from qmap); empty generates the default map")
	mapSeed := flag.Int64("mapseed", 1, "seed for the generated map")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	bal := flag.Bool("balance", false, "enable dynamic client->thread load balancing (parallel engine)")
	steal := flag.Bool("steal", false, "conflict-aware work-stealing request execution (parallel engine)")
	watchdog := flag.Duration("watchdog", 0, "frame watchdog deadline per phase (0 disables)")
	quarantine := flag.Bool("quarantine", false, "watchdog also quarantines the client a wedged thread was serving")
	budget := flag.Duration("budget", 0, "frame-time budget for overload shedding (0 disables)")
	dropP := flag.Float64("faultdrop", 0, "chaos: per-datagram drop probability on every port")
	dupP := flag.Float64("faultdup", 0, "chaos: per-datagram duplication probability")
	reorderP := flag.Float64("faultreorder", 0, "chaos: per-datagram reorder probability")
	corruptP := flag.Float64("faultcorrupt", 0, "chaos: per-datagram bit-flip probability")
	faultSeed := flag.Int64("faultseed", 1, "chaos: fault stream seed")
	recordPath := flag.String("record", "", "stream the session's deterministic input stream to this file as it runs (durable redo log; replay with qreplay)")
	ckptDir := flag.String("checkpoint", "", "checkpoint directory: capture durable world checkpoints at the reply barrier (enables -restore after a crash)")
	ckptInterval := flag.Uint64("checkpoint-interval", checkpoint.DefaultInterval, "frames between checkpoints")
	ckptDelta := flag.Int("checkpoint-delta", checkpoint.DefaultDeltaEvery, "delta checkpoints between full images (0 = every checkpoint full)")
	restore := flag.Bool("restore", false, "cold-start from the newest valid checkpoint in -checkpoint; survivors reconnect onto their entities")
	restoreLog := flag.String("restore-log", "", "redo log (.qrl) from the crashed run, replayed past the checkpoint to the exact pre-crash frame")
	matches := flag.Int("matches", 0, "instancing mode: host N concurrent matches (m0..mN-1) on a shared worker pool behind one lobby socket")
	matchWorkers := flag.Int("match-workers", 0, "scheduler workers for -matches (0 = GOMAXPROCS)")
	matchActive := flag.Duration("match-active", 0, "frame cadence of a match with clients (-matches; 0 = 15ms default)")
	matchIdle := flag.Duration("match-idle", 0, "tick cadence of an empty match (-matches; 0 = 250ms default)")
	flag.Parse()

	if *matches > 0 {
		if *restore || *recordPath != "" || *ckptDir != "" || *threads > 1 {
			fatal(fmt.Errorf("-matches hosts sequential engines and does not compose with -threads/-record/-checkpoint/-restore"))
		}
		m, err := loadMap(*mapPath, *mapSeed)
		if err != nil {
			fatal(err)
		}
		runMatches(m, *mapSeed, *addr, *matches, *matchWorkers, *maxClients,
			*matchActive, *matchIdle, *statsEvery)
		return
	}

	var (
		m         *worldmap.Map
		world     *game.World
		rs        *server.RestoreState
		worldSeed = *mapSeed
		err       error
	)
	if *restore {
		if *ckptDir == "" {
			fatal(fmt.Errorf("-restore requires -checkpoint <dir>"))
		}
		t0 := time.Now()
		rv, err := replay.Recover(*ckptDir, *restoreLog)
		if err != nil {
			fatal(err)
		}
		// The checkpoint carries the authoritative map and world seed;
		// -map/-mapseed are ignored on a restore.
		world = rv.World
		m = rv.Checkpoint.Map
		worldSeed = rv.Checkpoint.WorldSeed
		rs = rv.RestoreState(time.Since(t0).Nanoseconds())
		fmt.Printf("qserved: recovered frame %d from %s (+%d redo items, %d bytes torn, %d survivors parked)\n",
			rv.Frames, *ckptDir, rv.TailItems, rv.TailDropped, len(rv.Clients))
	} else {
		if m, err = loadMap(*mapPath, *mapSeed); err != nil {
			fatal(err)
		}
		if world, err = game.NewWorld(game.Config{Map: m, Seed: *mapSeed}); err != nil {
			fatal(err)
		}
	}

	var strat locking.Strategy = locking.Conservative{}
	if *lockMode == "optimized" {
		strat = locking.Optimized{}
	}

	numConns := *threads
	if numConns < 1 {
		numConns = 1
	}
	conns, err := openPorts(*addr, numConns)
	if err != nil {
		fatal(err)
	}
	fcfg := transport.FaultConfig{
		Seed:        *faultSeed,
		DropProb:    *dropP,
		DupProb:     *dupP,
		ReorderProb: *reorderP,
		CorruptProb: *corruptP,
	}.Clamped()
	if fcfg != (transport.FaultConfig{Seed: *faultSeed}) {
		// Self-inflicted chaos: wrap every port in the fault injector so a
		// deployment can be soak-tested without an external impairment box.
		for i, c := range conns {
			pc := fcfg
			pc.Seed = fcfg.Seed*31 + int64(i) + 1
			conns[i] = transport.NewFaultConn(c, pc)
		}
		fmt.Printf("qserved: fault injection on: drop=%.2g dup=%.2g reorder=%.2g corrupt=%.2g seed=%d\n",
			fcfg.DropProb, fcfg.DupProb, fcfg.ReorderProb, fcfg.CorruptProb, fcfg.Seed)
	}
	cfg := server.Config{
		World:            world,
		Conns:            conns,
		Threads:          *threads,
		Strategy:         strat,
		MaxClients:       *maxClients,
		WatchdogDeadline: *watchdog,
		QuarantineWedged: *quarantine,
		FrameBudget:      *budget,
		Stealing:         *steal,
	}
	if *bal {
		cfg.Balance = balance.Policy{Enabled: true}
	}
	cfg.Restore = rs
	// The stream recorder flushes every completed frame, so the log on
	// disk is a valid redo tail even after a kill -9 (a torn in-flight
	// frame is cut at the last intact record on recovery).
	var rec *replay.StreamRecorder
	if *recordPath != "" {
		if rec, err = replay.NewStreamRecorder(*recordPath, m, worldSeed); err != nil {
			fatal(err)
		}
		cfg.Record = rec
		fmt.Printf("qserved: streaming session log to %s\n", *recordPath)
	}
	var ckw *checkpoint.Writer
	if *ckptDir != "" {
		if ckw, err = checkpoint.NewWriter(checkpoint.Config{
			Dir:        *ckptDir,
			Interval:   *ckptInterval,
			DeltaEvery: *ckptDelta,
			WorldSeed:  worldSeed,
			Map:        m,
		}); err != nil {
			fatal(err)
		}
		cfg.Checkpoint = ckw
		fmt.Printf("qserved: checkpointing to %s every %d frames (1 full per %d deltas)\n",
			*ckptDir, *ckptInterval, *ckptDelta)
	}

	var eng server.Engine
	mode := "sequential"
	if *threads <= 0 {
		eng, err = server.NewSequential(cfg)
	} else {
		eng, err = server.NewParallel(cfg)
		mode = fmt.Sprintf("parallel x%d (%s locking)", *threads, strat.Name())
		if *steal {
			mode += " +stealing"
		}
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("qserved: map %q (%d rooms), %s engine, base addr %s\n",
		m.Name, len(m.Rooms), mode, conns[0].LocalAddr())
	for i, c := range conns {
		fmt.Printf("  thread %d port: %s\n", i, c.LocalAddr())
	}
	eng.Start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	var ticker *time.Ticker
	if *statsEvery > 0 {
		ticker = time.NewTicker(*statsEvery)
		defer ticker.Stop()
	} else {
		ticker = time.NewTicker(time.Hour)
		ticker.Stop()
	}
	for {
		select {
		case <-sig:
			fmt.Println("\nshutting down ...")
			// Graceful drain: notify every connected client it is being
			// disconnected, then stop. Engines that predate Shutdown fall
			// back to a plain Stop.
			if g, ok := eng.(interface{ Shutdown() }); ok {
				g.Shutdown()
			} else {
				eng.Stop()
			}
			if rec != nil {
				if err := rec.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "qserved: closing session log:", err)
				} else {
					fmt.Printf("recorded %d items (%d ticks) to %s\n",
						rec.Items(), rec.TickCount(), *recordPath)
				}
			}
			if ckw != nil {
				if err := ckw.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "qserved: checkpoint writer:", err)
				}
			}
			printBreakdowns(eng)
			return
		case <-ticker.C:
			fmt.Printf("clients=%d frames=%d replies=%d rate=%.1f/s in=%dKB out=%dKB\n",
				eng.NumClients(), eng.Frames(), eng.Replies(),
				float64(eng.Replies())/eng.Duration().Seconds(),
				eng.BytesIn()/1024, eng.BytesOut()/1024)
		}
	}
}

// runMatches is the instancing daemon: N sequential-engine matches
// multiplexed over one UDP socket and a shared worker pool. Clients
// join a specific match by naming it in their Connect datagram
// (qbot -match m3) or let the lobby assign one round-robin.
func runMatches(m *worldmap.Map, seed int64, addr string, n, workers, maxClients int, active, idle, statsEvery time.Duration) {
	conn, err := transport.ListenUDP(addr)
	if err != nil {
		fatal(err)
	}
	mgr := match.NewManager(match.Config{
		Workers:        workers,
		ActiveInterval: active,
		IdleInterval:   idle,
	})
	lobby := match.NewLobby(mgr, conn)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("m%d", i)
		if _, err := lobby.CreateMatch(name, func(c transport.Conn) (*server.Sequential, error) {
			w, err := game.NewWorld(game.Config{Map: m, Seed: seed})
			if err != nil {
				return nil, err
			}
			return server.NewSequential(server.Config{
				World:      w,
				Conns:      []transport.Conn{c},
				MaxClients: maxClients,
				Shared:     mgr.Shared(),
			})
		}); err != nil {
			fatal(err)
		}
	}
	mgr.Start()
	fmt.Printf("qserved: instancing: %d matches (m0..m%d) behind lobby %s, map %q\n",
		n, n-1, conn.LocalAddr(), m.Name)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(time.Hour)
	ticker.Stop()
	if statsEvery > 0 {
		ticker = time.NewTicker(statsEvery)
		defer ticker.Stop()
	}
	for {
		select {
		case <-sig:
			fmt.Println("\nshutting down ...")
			lobby.Close()
			mgr.Stop()
			printMatchRollups(mgr, lobby)
			return
		case <-ticker.C:
			// Live ticks read only scheduler/lobby state; engine counters
			// are unstable while matches may be mid-step.
			fmt.Printf("matches=%d evictions=%d routed=%d rejects=%d scratch=%d\n",
				mgr.Len(), mgr.Evictions(), lobby.Routed(), lobby.Rejects(),
				mgr.Shared().Made())
		}
	}
}

// printMatchRollups prints one line per match that saw clients plus the
// manager-level aggregate. Idle matches only appear in the aggregate.
func printMatchRollups(mgr *match.Manager, lobby *match.Lobby) {
	for _, st := range mgr.Stats() {
		if st.Clients == 0 && st.Replies == 0 {
			continue
		}
		status := ""
		if st.Evicted {
			status = " EVICTED"
		}
		fmt.Printf("match %s: clients=%d frames=%d replies=%d step p50=%.3fms p99=%.3fms late p99=%.3fms in=%dKB out=%dKB%s\n",
			st.Name, st.Clients, st.Frames, st.Replies,
			st.StepP50Ms, st.StepP99Ms, st.LateP99Ms,
			st.BytesIn/1024, st.BytesOut/1024, status)
	}
	ag := mgr.AggregateStats()
	fmt.Printf("aggregate: matches=%d live=%d active=%d evicted=%d frames=%d replies=%d clients=%d\n",
		ag.Matches, ag.Live, ag.ActiveM, ag.Evicted, ag.Frames, ag.Replies, ag.Clients)
	fmt.Printf("aggregate: routed=%d rejects=%d scratch sets=%d\n",
		lobby.Routed(), lobby.Rejects(), ag.ScratchMade)
	fmt.Printf("aggregate step: %s\n", ag.StepHist.String())
	fmt.Printf("aggregate breakdown: %s\n", ag.Breakdown.String())
}

func loadMap(path string, seed int64) (*worldmap.Map, error) {
	if path != "" {
		return worldmap.LoadFile(path)
	}
	cfg := worldmap.DefaultConfig()
	cfg.Seed = seed
	return worldmap.Generate(cfg)
}

// openPorts opens n consecutive UDP ports starting at addr (when addr
// has port 0 the extra ports are also ephemeral).
func openPorts(addr string, n int) ([]transport.Conn, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("bad address %q: %w", addr, err)
	}
	base, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("bad port %q: %w", portStr, err)
	}
	conns := make([]transport.Conn, n)
	for i := 0; i < n; i++ {
		port := 0
		if base != 0 {
			port = base + i
		}
		c, err := transport.ListenUDP(net.JoinHostPort(host, strconv.Itoa(port)))
		if err != nil {
			return nil, err
		}
		conns[i] = c
	}
	return conns, nil
}

func printBreakdowns(eng server.Engine) {
	for i, bd := range eng.Breakdowns() {
		fmt.Printf("thread %d: %s\n", i, bd.String())
		_ = metrics.Dur(bd.Total())
	}
	fmt.Printf("total: frames=%d replies=%d duration=%s in=%dKB out=%dKB\n",
		eng.Frames(), eng.Replies(), eng.Duration().Truncate(time.Millisecond),
		eng.BytesIn()/1024, eng.BytesOut()/1024)
	if par, ok := eng.(*server.Parallel); ok {
		fmt.Printf("migrations: %d\n", par.Migrations())
		if w, e := len(par.Wedges()), par.FaultEvictions(); w > 0 || e > 0 {
			fmt.Printf("robustness: wedges=%d evictions=%d shed-level=%d\n",
				w, e, par.ShedLevel())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qserved:", err)
	os.Exit(1)
}
