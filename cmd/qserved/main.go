// qserved is the live game server daemon. It hosts a deathmatch session
// over real UDP sockets using either the sequential engine or the
// multithreaded engine with region locking — the deployable counterpart
// of the simulated experiments.
//
// Usage:
//
//	qserved -addr 127.0.0.1:27500 -threads 4 -locking optimized
//
// A server with N threads listens on N consecutive UDP ports starting at
// the given address: "a server appears to clients as one IP address and
// a range of UDP ports". Clients connect to the base port and are told
// their assigned port in the Accept reply. Stop with SIGINT/SIGTERM; the
// server prints its execution-time breakdown on exit.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"qserve/internal/balance"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/server"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:27500", "base UDP address")
	threads := flag.Int("threads", 1, "server threads (0 = sequential engine)")
	lockMode := flag.String("locking", "conservative", "locking strategy: conservative or optimized")
	maxClients := flag.Int("maxclients", 128, "maximum simultaneous players")
	mapPath := flag.String("map", "", "map file (JSON, from qmap); empty generates the default map")
	mapSeed := flag.Int64("mapseed", 1, "seed for the generated map")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	bal := flag.Bool("balance", false, "enable dynamic client->thread load balancing (parallel engine)")
	flag.Parse()

	m, err := loadMap(*mapPath, *mapSeed)
	if err != nil {
		fatal(err)
	}
	world, err := game.NewWorld(game.Config{Map: m, Seed: *mapSeed})
	if err != nil {
		fatal(err)
	}

	var strat locking.Strategy = locking.Conservative{}
	if *lockMode == "optimized" {
		strat = locking.Optimized{}
	}

	numConns := *threads
	if numConns < 1 {
		numConns = 1
	}
	conns, err := openPorts(*addr, numConns)
	if err != nil {
		fatal(err)
	}
	cfg := server.Config{
		World:      world,
		Conns:      conns,
		Threads:    *threads,
		Strategy:   strat,
		MaxClients: *maxClients,
	}
	if *bal {
		cfg.Balance = balance.Policy{Enabled: true}
	}

	var eng server.Engine
	mode := "sequential"
	if *threads <= 0 {
		eng, err = server.NewSequential(cfg)
	} else {
		eng, err = server.NewParallel(cfg)
		mode = fmt.Sprintf("parallel x%d (%s locking)", *threads, strat.Name())
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("qserved: map %q (%d rooms), %s engine, base addr %s\n",
		m.Name, len(m.Rooms), mode, conns[0].LocalAddr())
	for i, c := range conns {
		fmt.Printf("  thread %d port: %s\n", i, c.LocalAddr())
	}
	eng.Start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	var ticker *time.Ticker
	if *statsEvery > 0 {
		ticker = time.NewTicker(*statsEvery)
		defer ticker.Stop()
	} else {
		ticker = time.NewTicker(time.Hour)
		ticker.Stop()
	}
	for {
		select {
		case <-sig:
			fmt.Println("\nshutting down ...")
			eng.Stop()
			printBreakdowns(eng)
			return
		case <-ticker.C:
			fmt.Printf("clients=%d frames=%d replies=%d rate=%.1f/s in=%dKB out=%dKB\n",
				eng.NumClients(), eng.Frames(), eng.Replies(),
				float64(eng.Replies())/eng.Duration().Seconds(),
				eng.BytesIn()/1024, eng.BytesOut()/1024)
		}
	}
}

func loadMap(path string, seed int64) (*worldmap.Map, error) {
	if path != "" {
		return worldmap.LoadFile(path)
	}
	cfg := worldmap.DefaultConfig()
	cfg.Seed = seed
	return worldmap.Generate(cfg)
}

// openPorts opens n consecutive UDP ports starting at addr (when addr
// has port 0 the extra ports are also ephemeral).
func openPorts(addr string, n int) ([]transport.Conn, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("bad address %q: %w", addr, err)
	}
	base, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("bad port %q: %w", portStr, err)
	}
	conns := make([]transport.Conn, n)
	for i := 0; i < n; i++ {
		port := 0
		if base != 0 {
			port = base + i
		}
		c, err := transport.ListenUDP(net.JoinHostPort(host, strconv.Itoa(port)))
		if err != nil {
			return nil, err
		}
		conns[i] = c
	}
	return conns, nil
}

func printBreakdowns(eng server.Engine) {
	for i, bd := range eng.Breakdowns() {
		fmt.Printf("thread %d: %s\n", i, bd.String())
		_ = metrics.Dur(bd.Total())
	}
	fmt.Printf("total: frames=%d replies=%d duration=%s in=%dKB out=%dKB\n",
		eng.Frames(), eng.Replies(), eng.Duration().Truncate(time.Millisecond),
		eng.BytesIn()/1024, eng.BytesOut()/1024)
	if par, ok := eng.(*server.Parallel); ok {
		fmt.Printf("migrations: %d\n", par.Migrations())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qserved:", err)
	os.Exit(1)
}
