// qsim runs one simulated-server experiment and prints its measurements.
package main

import (
	"flag"
	"fmt"
	"os"

	"qserve/internal/balance"
	"qserve/internal/checkpoint"
	"qserve/internal/experiments"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/simserver"
	"qserve/internal/worldmap"
)

func main() {
	players := flag.Int("players", 128, "number of automatic players")
	threads := flag.Int("threads", 4, "server threads")
	seq := flag.Bool("seq", false, "run the sequential (lock-free) server")
	opt := flag.Bool("opt", false, "use optimized locking")
	dur := flag.Float64("dur", 10, "virtual seconds to simulate")
	depth := flag.Int("depth", 0, "areanode tree depth (0 = default 4)")
	seed := flag.Int64("seed", 1, "experiment seed")
	rows := flag.Int("rows", 0, "map room rows (0 = default)")
	cols := flag.Int("cols", 0, "map room cols (0 = default)")
	assign := flag.String("assign", "block", "player assignment: block, roundrobin, region")
	batch := flag.Int64("batch", 0, "request batching delay in microseconds (0 = off)")
	trace := flag.Int("trace", 0, "render an execution timeline of the first N frames")
	bal := flag.Bool("balance", false, "enable dynamic client->thread load balancing at the frame barrier")
	steal := flag.Bool("steal", false, "conflict-aware work-stealing request execution")
	cluster := flag.Int("cluster", 0, "pin the first N players to room 0 (skewed workload)")
	loss := flag.Float64("loss", 0, "per-request network loss probability (0..1)")
	ckptDir := flag.String("checkpoint", "", "capture durable checkpoints into this directory during the run")
	ckptInterval := flag.Uint64("checkpoint-interval", checkpoint.DefaultInterval, "frames between checkpoints")
	ckptDelta := flag.Int("checkpoint-delta", checkpoint.DefaultDeltaEvery, "delta checkpoints between full images")
	matchesN := flag.Int("matches", 0, "simulate a fleet of N independent matches of this configuration (per-match seeds) and print per-match rollups plus the aggregate")
	flag.Parse()

	cfg := simserver.Config{
		Players:       *players,
		Threads:       *threads,
		Sequential:    *seq,
		DurationS:     *dur,
		AreanodeDepth: *depth,
		Seed:          *seed,
	}
	if *rows > 0 && *cols > 0 {
		mc := worldmap.DefaultConfig()
		mc.Rows, mc.Cols = *rows, *cols
		mc.Seed = *seed + 1
		cfg.MapConfig = mc
	}
	if *opt {
		cfg.Strategy = locking.Optimized{}
	}
	switch *assign {
	case "roundrobin":
		cfg.Assign = simserver.AssignRoundRobin
	case "region":
		cfg.Assign = simserver.AssignRegion
	}
	cfg.BatchDelayNs = *batch * 1000
	cfg.TraceFrames = *trace
	cfg.Cluster = *cluster
	cfg.LossProb = *loss
	if *bal {
		cfg.Balance = balance.Policy{Enabled: true}
	}
	cfg.Stealing = *steal
	var ckw *checkpoint.Writer
	if *ckptDir != "" {
		// Resolve the map up front (the same way simserver.Run would) so
		// the writer can embed it in every checkpoint file.
		if cfg.Map == nil {
			mc := cfg.MapConfig
			if mc.Rows == 0 {
				mc = worldmap.DefaultConfig()
				mc.Seed = cfg.Seed + 1
			}
			cfg.Map = worldmap.MustGenerate(mc)
		}
		var err error
		if ckw, err = checkpoint.NewWriter(checkpoint.Config{
			Dir:        *ckptDir,
			Interval:   *ckptInterval,
			DeltaEvery: *ckptDelta,
			WorldSeed:  cfg.Seed,
			Map:        cfg.Map,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Checkpoint = ckw
	}
	if *matchesN > 1 {
		runMatchFleet(cfg, *matchesN)
		return
	}
	res, err := simserver.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("players=%d threads=%d seq=%v strategy=%s leaves=%d\n",
		res.Players, res.Threads, res.Sequential, res.Strategy, res.NumLeaves)
	fmt.Printf("frames=%d requests=%d replies=%d rate=%.1f/s resp=%.1fms\n",
		res.Frames, res.Requests, res.Resp.Replies, res.ResponseRate(), res.ResponseTimeMs())
	if res.LostRequests > 0 {
		fmt.Printf("lost=%d (%.1f%% of offered load)\n", res.LostRequests,
			100*float64(res.LostRequests)/float64(res.Requests+res.LostRequests))
	}
	bd := res.Avg
	for c := metrics.Component(0); c < metrics.NumComponents; c++ {
		fmt.Printf("  %-11s %6.1f%%  (%s)\n", c.String(), bd.Percent(c), metrics.Dur(bd.Ns[c]))
	}
	fmt.Printf("  reply volume: %d datagrams, %d bytes (%.1f B/reply), %d buffer growths\n",
		bd.ReplyDatagrams, bd.ReplyBytes, bd.BytesPerReply(), bd.ReplyAllocs)
	fmt.Printf("  leaf-lock %.1f%% of lock, parent-lock %.1f%%\n",
		pct(bd.LeafLockNs, bd.Ns[metrics.CompLock]), pct(bd.ParentLockNs, bd.Ns[metrics.CompLock]))
	fmt.Printf("  req/thread/frame=%.2f sharedleaf=%.2f touched=%.2f lockops/leaf/frame=%.2f\n",
		res.FrameLog.RequestsPerThreadPerFrame(), res.FrameLog.SharedLeafFraction(),
		res.FrameLog.TouchedLeafFraction(), res.FrameLog.LockOpsPerLeafPerFrame())
	parts := 0.0
	for _, f := range res.FrameLog.Frames {
		parts += float64(f.Participants)
	}
	if n := len(res.FrameLog.Frames); n > 0 {
		parts /= float64(n)
	}
	fmt.Printf("  avg participants/frame=%.2f\n", parts)
	im, sd := res.FrameLog.ImbalanceStats()
	fmt.Printf("  imbalance mean=%.2f sd=%.2f distinctleaves/req=%.2f relock=%.2f\n",
		im, sd, res.Locks.AvgDistinctLeavesPerRequest(), res.Locks.RelockFraction())
	fmt.Printf("  exec load max/mean=%.2f migrations=%d\n",
		res.FrameLog.ExecLoadRatio(), res.Migrations)
	if ckw != nil {
		if err := ckw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	// Durability counters are captured by the barrier master alone, so sum
	// across threads rather than using the per-thread average.
	var dsum metrics.Breakdown
	for i := range res.PerThread {
		dsum.Add(&res.PerThread[i])
	}
	if dsum.Checkpoints > 0 || dsum.RecoveryNs > 0 {
		per := int64(0)
		if dsum.Checkpoints > 0 {
			per = dsum.CheckpointNs / dsum.Checkpoints
		}
		fmt.Printf("  durability: %d checkpoints (%s capture, %s each), %dKB written, delta ratio %.2f, %d skips",
			dsum.Checkpoints, metrics.Dur(dsum.CheckpointNs), metrics.Dur(per),
			dsum.CheckpointBytes/1024, dsum.DeltaRatio(), dsum.CheckpointSkips)
		if dsum.RecoveryNs > 0 {
			fmt.Printf(", recovery %s", metrics.Dur(dsum.RecoveryNs))
		}
		fmt.Println()
	}
	if *trace > 0 {
		fmt.Println()
		fmt.Print(experiments.RenderTimeline(res.Trace, res.Threads, 96))
		fmt.Println("W=world r=requests b=barrier R=reply o=wait-open e=wait-end .=idle")
	}
}

// runMatchFleet simulates n independent matches of one configuration —
// the DES counterpart of qserved -matches, where each match is its own
// engine — and prints per-match rollups plus the fleet aggregate. Seeds
// vary per match so the rows show the workload's natural spread.
func runMatchFleet(cfg simserver.Config, n int) {
	t := metrics.Table{
		Title:  fmt.Sprintf("Fleet: %d matches x %d players, %d threads each", n, cfg.Players, cfg.Threads),
		Header: []string{"match", "frames", "requests", "replies", "rate/s", "resp ms", "exec", "lock", "idle"},
	}
	var (
		frames            uint64
		requests, replies int64
		rate, respSum     float64
		agg               metrics.Breakdown
	)
	for i := 0; i < n; i++ {
		mc := cfg
		mc.Seed = cfg.Seed + int64(i)
		res, err := simserver.Run(mc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bd := res.Avg
		t.AddRow(fmt.Sprintf("m%d", i),
			fmt.Sprint(res.Frames),
			fmt.Sprint(res.Requests),
			fmt.Sprint(res.Resp.Replies),
			metrics.F1(res.ResponseRate()),
			metrics.F1(res.ResponseTimeMs()),
			metrics.Pct(bd.Percent(metrics.CompExec)),
			metrics.Pct(bd.Percent(metrics.CompLock)),
			metrics.Pct(bd.Percent(metrics.CompIdle)))
		frames += res.Frames
		requests += res.Requests
		replies += res.Resp.Replies
		rate += res.ResponseRate()
		respSum += res.ResponseTimeMs()
		agg.Add(&bd)
	}
	fmt.Print(t.Render())
	fmt.Printf("aggregate: frames=%d requests=%d replies=%d rate=%.1f/s mean resp=%.1fms\n",
		frames, requests, replies, rate, respSum/float64(n))
	fmt.Printf("aggregate breakdown: exec=%s lock=%s recv=%s reply=%s idle=%s world=%s\n",
		metrics.Pct(agg.Percent(metrics.CompExec)),
		metrics.Pct(agg.Percent(metrics.CompLock)),
		metrics.Pct(agg.Percent(metrics.CompRecv)),
		metrics.Pct(agg.Percent(metrics.CompReply)),
		metrics.Pct(agg.Percent(metrics.CompIdle)),
		metrics.Pct(agg.Percent(metrics.CompWorld)))
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
