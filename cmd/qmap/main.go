// qmap generates, inspects, and renders game maps.
//
// Usage:
//
//	qmap -rows 6 -cols 6 -seed 3 -o map.json   # generate and save
//	qmap -in map.json -render                  # load and draw
//	qmap -render                               # generate default, draw
package main

import (
	"flag"
	"fmt"
	"os"

	"qserve/internal/worldmap"
)

func main() {
	rows := flag.Int("rows", 6, "room grid rows")
	cols := flag.Int("cols", 6, "room grid columns")
	seed := flag.Int64("seed", 1, "generator seed")
	items := flag.Float64("items", 3, "mean items per room")
	teles := flag.Int("teleporters", 2, "teleporter pairs")
	in := flag.String("in", "", "load this map file instead of generating")
	out := flag.String("o", "", "save the map to this file")
	render := flag.Bool("render", false, "draw an ASCII schematic")
	flag.Parse()

	var m *worldmap.Map
	var err error
	if *in != "" {
		m, err = worldmap.LoadFile(*in)
	} else {
		cfg := worldmap.DefaultConfig()
		cfg.Rows, cfg.Cols = *rows, *cols
		cfg.Seed = *seed
		cfg.ItemsPerRoom = *items
		cfg.TeleporterPairs = *teles
		cfg.Name = fmt.Sprintf("gen-dm%d", *rows**cols)
		m, err = worldmap.Generate(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qmap:", err)
		os.Exit(1)
	}

	s := m.ComputeStats()
	fmt.Printf("map %q: %d rooms, %d portals, %d brushes, %d items, %d spawns, %d teleporters\n",
		m.Name, s.Rooms, s.Portals, s.Brushes, s.Items, s.Spawns, s.Teleporters)
	fmt.Printf("waypoints: %d (%d links), avg visible rooms: %.1f\n",
		s.Waypoints, s.WaypointLinks, s.AvgVisibleRooms)
	fmt.Printf("bounds: %v\n", m.Bounds)

	if *render {
		fmt.Println()
		fmt.Print(m.RenderASCII())
	}
	if *out != "" {
		if err := m.SaveFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "qmap:", err)
			os.Exit(1)
		}
		fmt.Printf("saved to %s\n", *out)
	}
}
