// Package qserve_test hosts the paper-reproduction benchmark harness:
// one testing.B benchmark per table and figure of the IPPS 2004 paper's
// evaluation. Each benchmark runs the corresponding experiment on the
// simulated machine with a short virtual duration and reports the
// headline quantities as custom metrics (b.ReportMetric), so
//
//	go test -bench=. -benchmem
//
// regenerates the full result set in one command. cmd/qbench produces
// the long-form tables (and paper-length two-minute runs with -dur 120).
package qserve_test

import (
	"fmt"
	"testing"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/entity"
	"qserve/internal/experiments"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/protocol"
	"qserve/internal/server"
	"qserve/internal/simserver"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// benchDuration is the virtual seconds simulated per configuration per
// iteration. The statistics are stationary, so short runs preserve the
// paper's shapes; raise it for tighter numbers.
const benchDuration = 2.0

func benchOpts() experiments.Options {
	return experiments.Options{DurationS: benchDuration, Seed: 1}
}

func benchCfg(players, threads int, sequential bool, strat locking.Strategy) simserver.Config {
	return simserver.Config{
		MapConfig:  experiments.PaperMapConfig(1),
		Players:    players,
		Threads:    threads,
		Sequential: sequential,
		Strategy:   strat,
		DurationS:  benchDuration,
		Seed:       1,
	}
}

func mustRun(b *testing.B, cfg simserver.Config) *simserver.Result {
	b.Helper()
	res, err := simserver.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1MachineConfig reports the simulated testbed (Table 1).
func BenchmarkTable1MachineConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1SequentialFrame measures the sequential frame structure
// (Figure 1): stage shares of the S→P→Rx/E→T/Tx loop.
func BenchmarkFig1SequentialFrame(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := mustRun(b, benchCfg(64, 1, true, nil))
		b.ReportMetric(res.Avg.Percent(metrics.CompReply), "reply_%")
		b.ReportMetric(res.Avg.Percent(metrics.CompWorld), "world_%")
	}
}

// BenchmarkFig2AreanodeTree measures areanode construction and linking
// (Figure 2) through a populated run on the default 31-node tree.
func BenchmarkFig2AreanodeTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := mustRun(b, benchCfg(32, 1, true, nil))
		if res.NumLeaves != 16 {
			b.Fatalf("leaves = %d", res.NumLeaves)
		}
	}
}

// BenchmarkFig3FrameOrchestration measures the parallel frame protocol
// (Figure 3): average participants per frame at 4 threads.
func BenchmarkFig3FrameOrchestration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := mustRun(b, benchCfg(96, 4, false, locking.Conservative{}))
		parts := 0
		for _, f := range res.FrameLog.Frames {
			parts += f.Participants
		}
		if n := len(res.FrameLog.Frames); n > 0 {
			b.ReportMetric(float64(parts)/float64(n), "participants/frame")
		}
	}
}

// BenchmarkFig4SingleThreadOverhead reproduces Figure 4: the overhead of
// the single-thread parallel server over the sequential baseline.
func BenchmarkFig4SingleThreadOverhead(b *testing.B) {
	for _, players := range []int{64, 96, 128} {
		b.Run(fmt.Sprintf("players=%d", players), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq := mustRun(b, benchCfg(players, 1, true, nil))
				par := mustRun(b, benchCfg(players, 1, false, locking.Conservative{}))
				b.ReportMetric(experiments.RequestOverhead(seq, par), "overhead_%")
				b.ReportMetric(seq.ResponseRate(), "seq_rate")
				b.ReportMetric(par.ResponseRate(), "par_rate")
			}
		})
	}
}

// BenchmarkFig5MultiThread reproduces Figure 5: response rate, response
// time, and lock/wait shares per thread count with conservative locking.
func BenchmarkFig5MultiThread(b *testing.B) {
	for _, threads := range []int{2, 4, 8} {
		for _, players := range []int{64, 128, 160} {
			b.Run(fmt.Sprintf("threads=%d/players=%d", threads, players), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := mustRun(b, benchCfg(players, threads, false, locking.Conservative{}))
					b.ReportMetric(res.ResponseRate(), "rate")
					b.ReportMetric(res.ResponseTimeMs(), "resp_ms")
					b.ReportMetric(res.Avg.Percent(metrics.CompLock), "lock_%")
					b.ReportMetric(res.Avg.Percent(metrics.CompIntraWait)+
						res.Avg.Percent(metrics.CompInterWait), "wait_%")
				}
			})
		}
	}
}

// BenchmarkFig6OptimizedLocking reproduces Figure 6: the same sweep with
// expanded/directional locking.
func BenchmarkFig6OptimizedLocking(b *testing.B) {
	for _, threads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchCfg(160, threads, false, locking.Optimized{}))
				b.ReportMetric(res.ResponseRate(), "rate")
				b.ReportMetric(res.ResponseTimeMs(), "resp_ms")
				b.ReportMetric(res.Avg.Percent(metrics.CompLock), "lock_%")
			}
		})
	}
}

// BenchmarkFig7aLeafParentSplit reproduces Figure 7(a): the share of
// lock time due to leaf versus parent areanode locking.
func BenchmarkFig7aLeafParentSplit(b *testing.B) {
	for _, threads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchCfg(128, threads, false, locking.Conservative{}))
				total := res.Avg.LeafLockNs + res.Avg.ParentLockNs
				if total > 0 {
					b.ReportMetric(100*float64(res.Avg.LeafLockNs)/float64(total), "leaf_%")
				}
			}
		})
	}
}

// BenchmarkFig7bTreeSizeSweep reproduces Figure 7(b): distinct leaves
// locked per request as the areanode count grows from 3 to 63.
func BenchmarkFig7bTreeSizeSweep(b *testing.B) {
	for _, depth := range []int{1, 2, 3, 4, 5} {
		b.Run(fmt.Sprintf("areanodes=%d", 1<<(depth+1)-1), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(128, 4, false, locking.Optimized{})
				cfg.AreanodeDepth = depth
				res := mustRun(b, cfg)
				distinct := res.Locks.AvgDistinctLeavesPerRequest()
				b.ReportMetric(100*distinct/float64(res.NumLeaves), "world_locked_%")
				b.ReportMetric(100*res.Locks.RelockFraction(), "relocked_%")
			}
		})
	}
}

// BenchmarkFig7cLeafSharing reproduces Figure 7(c): the fraction of
// leaves locked by two or more threads in the same frame.
func BenchmarkFig7cLeafSharing(b *testing.B) {
	for _, players := range []int{64, 128, 160} {
		b.Run(fmt.Sprintf("players=%d", players), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchCfg(players, 4, false, locking.Conservative{}))
				b.ReportMetric(100*res.FrameLog.SharedLeafFraction(), "shared_%")
			}
		})
	}
}

// BenchmarkSec52Imbalance reproduces the §4.2/§5.2 balance statistics:
// requests per thread per frame and the per-frame spread.
func BenchmarkSec52Imbalance(b *testing.B) {
	for _, threads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchCfg(128, threads, false, locking.Conservative{}))
				mean, sd := res.FrameLog.ImbalanceStats()
				b.ReportMetric(res.FrameLog.RequestsPerThreadPerFrame(), "req/thread/frame")
				b.ReportMetric(mean, "spread_mean")
				b.ReportMetric(sd, "spread_sd")
			}
		})
	}
}

// BenchmarkSec51Coverage reproduces §5.1's map-activity measurements.
func BenchmarkSec51Coverage(b *testing.B) {
	for _, players := range []int{64, 128, 160} {
		b.Run(fmt.Sprintf("players=%d", players), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchCfg(players, 2, false, locking.Conservative{}))
				b.ReportMetric(100*res.FrameLog.TouchedLeafFraction(), "touched_%")
				b.ReportMetric(res.FrameLog.LockOpsPerLeafPerFrame(), "lockops/leaf/frame")
			}
		})
	}
}

// BenchmarkHeadlineSupportedPlayers measures the paper's top-line claim:
// the 8-thread optimized server versus the sequential baseline at the
// sequential saturation point.
func BenchmarkHeadlineSupportedPlayers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seq := mustRun(b, benchCfg(128, 1, true, nil))
		opt := mustRun(b, benchCfg(160, 8, false, locking.Optimized{}))
		b.ReportMetric(seq.ResponseTimeMs(), "seq128_resp_ms")
		b.ReportMetric(opt.ResponseTimeMs(), "opt8T160_resp_ms")
		b.ReportMetric(float64(opt.Resp.Replies)/float64(opt.Requests)*100, "opt8T160_replied_%")
	}
}

// BenchmarkAblationAssignment measures the paper's §5.1 future-work
// proposal: dynamic region-based player assignment versus static block
// assignment, under optimized locking.
func BenchmarkAblationAssignment(b *testing.B) {
	for _, policy := range []simserver.AssignPolicy{simserver.AssignBlock, simserver.AssignRegion} {
		b.Run(policy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(144, 4, false, locking.Optimized{})
				cfg.Assign = policy
				res := mustRun(b, cfg)
				b.ReportMetric(100*res.FrameLog.SharedLeafFraction(), "shared_%")
				b.ReportMetric(res.ResponseTimeMs(), "resp_ms")
			}
		})
	}
}

// BenchmarkAblationBatching measures the §5.2 future-work proposal:
// master-side request batching.
func BenchmarkAblationBatching(b *testing.B) {
	for _, batchUs := range []int64{0, 500, 2000} {
		b.Run(fmt.Sprintf("batch=%dus", batchUs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(128, 4, false, locking.Conservative{})
				cfg.BatchDelayNs = batchUs * 1000
				res := mustRun(b, cfg)
				b.ReportMetric(res.FrameLog.RequestsPerThreadPerFrame(), "req/thread/frame")
				b.ReportMetric(res.ResponseTimeMs(), "resp_ms")
			}
		})
	}
}

// BenchmarkLiveParallelServer exercises the real goroutine engine over
// the in-memory network: it measures wall-clock request/reply throughput
// of the deployable server rather than the simulated one. On a multicore
// host the thread counts separate; on one core they collapse, which is
// exactly why the figure-generating benchmarks above use virtual time.
func BenchmarkLiveParallelServer(b *testing.B) {
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			m := worldmap.MustGenerate(experiments.PaperMapConfig(1))
			world, err := game.NewWorld(game.Config{Map: m, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 4096})
			conns := make([]transport.Conn, threads)
			for i := range conns {
				conns[i], _ = net.Listen(fmt.Sprintf("srv:%d", i))
			}
			srv, err := server.NewParallel(server.Config{
				World: world, Conns: conns, Threads: threads,
				Strategy: locking.Optimized{}, MaxClients: 64,
				SelectTimeout: time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			srv.Start()
			defer srv.Stop()

			bots := make([]*botclient.Bot, 16)
			for i := range bots {
				bc, _ := net.Listen("")
				bots[i], err = botclient.New(botclient.Config{
					Name: fmt.Sprintf("b%d", i), Conn: bc,
					Server: transport.MemAddr("srv:0"), Map: m, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := bots[i].Connect(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, bot := range bots {
					bot.Step()
				}
				// Give the server a beat to form replies, as a paced
				// client frame would.
				time.Sleep(500 * time.Microsecond)
			}
			b.StopTimer()
			deadline := time.Now().Add(200 * time.Millisecond)
			for srv.Replies() < int64(b.N*len(bots)/2) && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			elapsed := srv.Duration().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(srv.Replies())/elapsed, "replies/s")
			}
		})
	}
}

// BenchmarkReplyPhaseAllocs measures the reply phase's per-round heap
// traffic: forming and encoding one snapshot for each of 16 players in a
// warmed-up world. "naive" is the pre-pooling path (fresh entity list,
// delta list, and encoder per client, baseline replaced wholesale);
// "pooled" is the live engine's ReplyScratch/Baseline pipeline. Run with
// -benchmem; the pooled path must report ~0 allocs/op in steady state
// while producing byte-identical datagrams (see
// internal/server.TestGoldenReplyStream).
func BenchmarkReplyPhaseAllocs(b *testing.B) {
	const numPlayers = 16
	setup := func(b *testing.B) (*game.World, []*entity.Entity) {
		b.Helper()
		m := worldmap.MustGenerate(worldmap.DefaultConfig())
		w, err := game.NewWorld(game.Config{Map: m, Seed: 77})
		if err != nil {
			b.Fatal(err)
		}
		players := make([]*entity.Entity, numPlayers)
		for i := range players {
			if players[i], err = w.SpawnPlayer(); err != nil {
				b.Fatal(err)
			}
		}
		// Scatter the players with some movement so views differ and the
		// world holds projectiles/items, as in a live frame.
		for f := 0; f < 30; f++ {
			for i, e := range players {
				cmd := protocol.MoveCmd{
					Forward: 320, Msec: 33,
					Yaw: protocol.AngleToWire(float64((f*37 + i*91) % 360)),
				}
				if (f+i)%7 == 0 {
					cmd.Buttons = protocol.BtnFire
				}
				w.ExecuteMove(e, &cmd, &game.LockContext{})
			}
			w.RunWorldFrame(0.033)
		}
		return w, players
	}
	events := []protocol.GameEvent{{Kind: 1, Actor: 3, Subject: 4}}

	b.Run("naive", func(b *testing.B) {
		w, players := setup(b)
		baselines := make([][]protocol.EntityState, numPlayers)
		baseTags := make([]uint32, numPlayers)
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			frame := uint32(n + 1)
			for i, e := range players {
				data, base, tag := server.ReferenceFormSnapshot(w, e, baselines[i], baseTags[i],
					frame, frame, frame*33, events, events)
				baselines[i], baseTags[i] = base, tag
				if len(data) == 0 {
					b.Fatal("empty datagram")
				}
			}
		}
	})

	b.Run("pooled", func(b *testing.B) {
		w, players := setup(b)
		var scratch server.ReplyScratch
		baselines := make([]server.Baseline, numPlayers)
		// Warm-up: the scratch and baselines circulate buffers that each
		// grow to the high-water mark once; steady state is what the
		// benchmark (and the CI allocation gate) measures.
		for round := 0; round < 8; round++ {
			for i, e := range players {
				scratch.FormSnapshot(w, nil, e, &baselines[i], 1, 1, 1, events, events, 0)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			frame := uint32(n + 1)
			for i, e := range players {
				data, _ := scratch.FormSnapshot(w, nil, e, &baselines[i],
					frame, frame, frame*33, events, events, 0)
				if len(data) == 0 {
					b.Fatal("empty datagram")
				}
			}
		}
	})

	// The indexed path: one shared visibility-index build per round plus
	// 16 merge-based snapshots. Must also hold 0 allocs/op in steady
	// state (the cache-build CI gate greps this sub-benchmark).
	b.Run("indexed", func(b *testing.B) {
		w, players := setup(b)
		var scratch server.ReplyScratch
		var vis game.VisIndex
		baselines := make([]server.Baseline, numPlayers)
		for round := 0; round < 8; round++ {
			vis.Build(w)
			for i, e := range players {
				scratch.FormSnapshot(w, &vis, e, &baselines[i], 1, 1, 1, events, events, 0)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			frame := uint32(n + 1)
			vis.Build(w)
			for i, e := range players {
				data, _ := scratch.FormSnapshot(w, &vis, e, &baselines[i],
					frame, frame, frame*33, events, events, 0)
				if len(data) == 0 {
					b.Fatal("empty datagram")
				}
			}
		}
	})
}

// snapshotWorld builds a warmed-up world with the given player count on
// the given map, scattered by scripted movement, for the snapshot
// benchmarks below.
func snapshotWorld(b *testing.B, mc worldmap.Config, players int) (*game.World, []*entity.Entity) {
	b.Helper()
	m := worldmap.MustGenerate(mc)
	w, err := game.NewWorld(game.Config{Map: m, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	ents := make([]*entity.Entity, players)
	for i := range ents {
		if ents[i], err = w.SpawnPlayer(); err != nil {
			b.Fatal(err)
		}
	}
	for f := 0; f < 30; f++ {
		for i, e := range ents {
			cmd := protocol.MoveCmd{
				Forward: 320, Msec: 33,
				Yaw: protocol.AngleToWire(float64((f*37 + i*91) % 360)),
			}
			w.ExecuteMove(e, &cmd, &game.LockContext{})
		}
		w.RunWorldFrame(0.033)
	}
	return w, ents
}

// highVisMapConfig raises the default map's connectivity and visibility
// depth: more doors and deeper portal vision inflate every client's
// visible set, the regime where the paper observes reply costs climbing
// ("maps exhibiting higher visibility incur higher reply processing
// times").
func highVisMapConfig() worldmap.Config {
	mc := worldmap.DefaultConfig()
	mc.Name = "gen-dm36-open"
	mc.ExtraDoorProb = 0.9
	mc.VisibilityDepth = 4
	return mc
}

// BenchmarkBuildSnapshot measures per-frame snapshot assembly for all
// clients — the naive per-client table scan versus the shared visibility
// index (one build + per-client merges) — across player counts and map
// visibility levels. time/op is one full frame's assembly work.
func BenchmarkBuildSnapshot(b *testing.B) {
	maps := []struct {
		name string
		mc   worldmap.Config
	}{
		{"lowvis", worldmap.DefaultConfig()},
		{"highvis", highVisMapConfig()},
	}
	for _, mp := range maps {
		for _, players := range []int{64, 96, 144} {
			w, ents := snapshotWorld(b, mp.mc, players)
			states := make([]protocol.EntityState, 0, 1024)

			b.Run(fmt.Sprintf("%s/players=%d/naive", mp.name, players), func(b *testing.B) {
				b.ReportAllocs()
				for n := 0; n < b.N; n++ {
					for _, e := range ents {
						states, _ = w.BuildSnapshot(e, states[:0])
					}
				}
			})
			b.Run(fmt.Sprintf("%s/players=%d/indexed", mp.name, players), func(b *testing.B) {
				var vis game.VisIndex
				vis.Build(w)
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					vis.Build(w)
					for _, e := range ents {
						states, _ = vis.AppendVisible(e, states[:0])
					}
				}
			})
		}
	}
}

// BenchmarkVisIndexBuild isolates the once-per-frame cost of the shared
// visibility-index/state-cache build. Steady-state rebuilds must be
// allocation-free (CI gates on 0 allocs/op here).
func BenchmarkVisIndexBuild(b *testing.B) {
	for _, players := range []int{64, 144} {
		b.Run(fmt.Sprintf("players=%d", players), func(b *testing.B) {
			w, _ := snapshotWorld(b, worldmap.DefaultConfig(), players)
			var vis game.VisIndex
			vis.Build(w)
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				vis.Build(w)
			}
		})
	}
}
