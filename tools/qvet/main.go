// Command qvet runs qserve's custom static-analysis suite: the
// machine-checked form of the engine's concurrency and hot-path
// invariants (region-lock protocol, barrier-phase discipline, atomic
// field hygiene, allocation-free reply path). See DESIGN.md §9 for the
// rules and annotation grammar.
//
// Usage:
//
//	qvet [-C dir] [-checks lockguard,noalloc] [packages]
//
// Exit status: 0 clean, 1 findings, 2 error.
package main

import (
	"os"

	"qserve/tools/qvet/internal/driver"
)

func main() {
	os.Exit(driver.Main(os.Args[1:], os.Stdout, os.Stderr))
}
