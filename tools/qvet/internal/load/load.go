// Package load turns go package patterns into a type-checked
// core.Program without golang.org/x/tools: it shells out to
// `go list -export -deps -json` (which compiles export data for every
// dependency into the build cache — fully offline), parses the target
// packages' non-test files with go/parser, and type-checks them with
// go/types using the gc importer fed by the export files go list named.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"qserve/tools/qvet/internal/core"
)

type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load loads and type-checks the packages matched by patterns, resolved
// relative to dir. validChecks seeds the annotation index's allow
// grammar.
func Load(dir string, patterns []string, validChecks map[string]bool) (*core.Program, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = absDir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("go list: no target packages matched %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	prog := &core.Program{Dir: absDir, Fset: fset}
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	prog.Annots = core.BuildIndex(fset, prog.Packages, validChecks)
	return prog, nil
}

func check(fset *token.FileSet, imp types.Importer, t *listPkg) (*core.Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
	}
	return &core.Package{
		Path:  t.ImportPath,
		Name:  t.Name,
		Dir:   t.Dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
