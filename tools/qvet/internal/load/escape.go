package load

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"qserve/tools/qvet/internal/core"
)

// escapeLine matches the gc compiler's -m escape findings. Only actual
// heap verdicts count — "does not escape", inlining notes, and "leaking
// param" annotations (which describe the signature, not an allocation)
// are ignored.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// Escapes builds the escape-analysis index for the packages matched by
// patterns under dir by running `go build -gcflags=-m`. The build cache
// replays compiler output on cache hits, so repeated runs stay cheap and
// still see the full escape listing. Binaries for main packages are
// discarded into a temp directory.
func Escapes(dir string, patterns []string) (*core.EscapeIndex, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	tmp, err := os.MkdirTemp("", "qvet-noalloc-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	run := func(extra ...string) (string, error) {
		args := append(append([]string{"build", "-gcflags=-m"}, extra...), patterns...)
		cmd := exec.Command("go", args...)
		cmd.Dir = absDir
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		return out.String(), err
	}
	// -o diverts main-package binaries away from the working tree, but
	// go build rejects it when the patterns match no main package — in
	// that case a plain build writes nothing anyway.
	text, err := run("-o", tmp)
	if err != nil && strings.Contains(text, "no main packages") {
		text, err = run()
	}
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, text)
	}

	ix := &core.EscapeIndex{ByFile: make(map[string]map[int][]string)}
	for _, line := range strings.Split(text, "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(absDir, file)
		}
		n, _ := strconv.Atoi(m[2])
		if ix.ByFile[file] == nil {
			ix.ByFile[file] = make(map[int][]string)
		}
		ix.ByFile[file][n] = append(ix.ByFile[file][n], m[4])
	}
	return ix, nil
}
