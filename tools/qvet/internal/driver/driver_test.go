package driver_test

import (
	"bytes"
	"testing"

	"qserve/tools/qvet/internal/analysistest"
	"qserve/tools/qvet/internal/driver"
)

// TestDriverFindsRot runs the full pipeline end to end over a fixture
// whose every //qvet: directive is broken, and checks exit code and
// report formatting.
func TestDriverFindsRot(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := driver.Main([]string{"-C", "testdata/rotfix", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	analysistest.MustFind(t, stdout.String(),
		"rot.go:5:1: annot: //qvet:phase=render names a nonexistent phase",
		`unknown //qvet: directive "frobnicate"`,
		`//qvet:allow references unknown check "spellcheck"`,
		"//qvet:phase directive is not attached to a function declaration",
	)
}

// TestDriverCleanTree exits 0 with no output on a conforming module.
func TestDriverCleanTree(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := driver.Main([]string{"-C", "testdata/clean", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("expected no output, got:\n%s", stdout.String())
	}
}

// TestDriverSubset runs a named subset and rejects unknown checks.
func TestDriverSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := driver.Main([]string{"-C", "testdata/clean", "-checks", "lockguard,noalloc", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("subset run: exit %d, stderr: %s", code, stderr.String())
	}
	if code := driver.Main([]string{"-checks", "nosuchcheck"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown check: exit %d, want 2", code)
	}
}

// TestDriverList prints the suite.
func TestDriverList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := driver.Main([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	analysistest.MustFind(t, stdout.String(), "lockguard", "phasecheck", "atomicfield", "noalloc", "annot")
}
