package driver_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"qserve/tools/qvet/internal/analysistest"
	"qserve/tools/qvet/internal/driver"
)

// TestDriverFindsRot runs the full pipeline end to end over a fixture
// whose every //qvet: directive is broken, and checks exit code and
// report formatting.
func TestDriverFindsRot(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := driver.Main([]string{"-C", "testdata/rotfix", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	analysistest.MustFind(t, stdout.String(),
		"rot.go:5:1: annot: //qvet:phase=render names a nonexistent phase",
		`unknown //qvet: directive "frobnicate"`,
		`//qvet:allow references unknown check "spellcheck"`,
		"//qvet:phase directive is not attached to a function declaration",
	)
}

// TestDriverCleanTree exits 0 with no output on a conforming module.
func TestDriverCleanTree(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := driver.Main([]string{"-C", "testdata/clean", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("expected no output, got:\n%s", stdout.String())
	}
}

// TestDriverSubset runs a named subset and rejects unknown checks.
func TestDriverSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := driver.Main([]string{"-C", "testdata/clean", "-checks", "lockguard,noalloc", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("subset run: exit %d, stderr: %s", code, stderr.String())
	}
	if code := driver.Main([]string{"-checks", "nosuchcheck"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown check: exit %d, want 2", code)
	}
}

// TestDriverList prints the suite.
func TestDriverList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := driver.Main([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	analysistest.MustFind(t, stdout.String(), "lockguard", "phasecheck", "atomicfield", "noalloc", "annot",
		"globalstate", "detcore", "wirecheck", "stealcheck")
}

// TestDriverJSON emits the same findings as machine-readable JSON, in
// the same deterministic order.
func TestDriverJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := driver.Main([]string{"-C", "testdata/rotfix", "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("expected findings, got an empty array")
	}
	for i, f := range findings {
		if f.File == "" || f.Line == 0 || f.Check == "" || f.Message == "" {
			t.Errorf("finding %d has empty fields: %+v", i, f)
		}
	}
	// Deterministic order: (file, line, check) ascending.
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		ka := fmt.Sprintf("%s\x00%08d\x00%s", a.File, a.Line, a.Check)
		kb := fmt.Sprintf("%s\x00%08d\x00%s", b.File, b.Line, b.Check)
		if ka > kb {
			t.Errorf("findings out of order: %v before %v", a, b)
		}
	}
}
