// Package driver implements the qvet command: flag parsing, package
// loading, analyzer execution, and diagnostic printing. It lives behind
// main so the smoke test can invoke the whole pipeline in-process.
package driver

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"qserve/tools/qvet/internal/checks"
	"qserve/tools/qvet/internal/core"
	"qserve/tools/qvet/internal/load"
)

// Main runs qvet with the given arguments (excluding argv[0]) and
// returns the process exit code: 0 clean, 1 findings, 2 usage or
// load/internal error.
func Main(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "run as if launched from this directory")
	only := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: qvet [-C dir] [-checks name,...] [-json] [packages]\n\nChecks qserve's concurrency and hot-path invariants (see DESIGN.md §9).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	suite := checks.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*core.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "qvet: unknown check %q\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := load.Load(*dir, patterns, checks.ValidChecks())
	if err != nil {
		fmt.Fprintf(stderr, "qvet: %v\n", err)
		return 2
	}
	for _, a := range suite {
		if a.NeedEscapes {
			esc, err := load.Escapes(*dir, patterns)
			if err != nil {
				fmt.Fprintf(stderr, "qvet: %v\n", err)
				return 2
			}
			prog.Escapes = esc
			break
		}
	}

	diags, err := core.RunAnalyzers(prog, suite)
	if err != nil {
		fmt.Fprintf(stderr, "qvet: %v\n", err)
		return 2
	}
	// Annotation-rot problems are appended unfiltered: a broken
	// directive must not be able to allow itself away. The final order
	// is (file, line, check, column, message) — fully deterministic so
	// CI diffs never churn with package-load order.
	diags = append(diags, prog.Annots.Problems...)
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})

	relFile := func(file string) string {
		if rel, err := filepath.Rel(prog.Dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return file
	}
	if *asJSON {
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{relFile(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "qvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relFile(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
