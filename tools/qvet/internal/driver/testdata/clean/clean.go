// Package clean passes every check: one well-formed annotation of each
// kind, no violations.
package clean

// Sum is allocation-free and reply-phase.
//
//qvet:phase=reply
//qvet:noalloc
func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
