// Package rotfix seeds annotation rot: every directive here is broken
// in a different way and must fail the annot check.
package rotfix

//qvet:phase=render
func badPhase() {}

//qvet:frobnicate
func badDirective() {}

//qvet:allow=spellcheck whatever
var x = 1

// The type below carries a phase directive, which only func
// declarations may.
//
//qvet:phase=reply
type notAFunc struct{}

func use() {
	badPhase()
	badDirective()
	_ = x
	_ = notAFunc{}
}

var _ = use
