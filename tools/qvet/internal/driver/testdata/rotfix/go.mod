module rotfix

go 1.22
