// Package annotcheck reports annotation rot: //qvet: directives that
// name a nonexistent phase or check, carry bad grammar, or are attached
// to a declaration the suite does not understand. Without it a typo'd
// annotation silently checks nothing; with it, CI fails instead.
package annotcheck

import (
	"qserve/tools/qvet/internal/core"
)

// Analyzer is the annot check.
var Analyzer = &core.Analyzer{
	Name:       "annot",
	Doc:        "every //qvet: directive parses, names a real phase/check, and is attached to an analyzable declaration",
	RunProgram: runProgram,
}

func runProgram(prog *core.Program, report core.Reporter) error {
	// Problems were collected while building the index; they bypass the
	// allow filter deliberately (a malformed directive must not be able
	// to suppress its own report), so they are emitted directly.
	_ = report
	return nil
}

// Problems returns the raw index problems; the driver appends them to
// the diagnostic stream unfiltered.
func Problems(prog *core.Program) []core.Diagnostic {
	if prog.Annots == nil {
		return nil
	}
	return prog.Annots.Problems
}
