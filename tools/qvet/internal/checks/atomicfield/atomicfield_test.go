package atomicfield_test

import (
	"testing"

	"qserve/tools/qvet/internal/analysistest"
	"qserve/tools/qvet/internal/checks/atomicfield"
	"qserve/tools/qvet/internal/core"
)

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, "testdata/atomfix", []*core.Analyzer{atomicfield.Analyzer})
}
