// Package a seeds atomicfield violations: mixed plain/atomic field
// access, a misaligned 64-bit raw atomic, and wholesale assignment to a
// typed atomic value.
package a

import "sync/atomic"

// Counters mixes raw-atomic and typed-atomic fields.
type Counters struct {
	// Hits is 8-aligned under 32-bit layout (offset 0): clean.
	Hits int64
	pad  int32
	// lost sits at 32-bit offset 12: a 64-bit raw atomic on it faults
	// on 386/arm before go1.19 field realignment.
	lost uint64
	// seq is a typed atomic: Store/Load only, never assignment.
	seq atomic.Uint32
}

// Bump uses atomics correctly for Hits, and trips the alignment rule
// for lost.
func (c *Counters) Bump() {
	atomic.AddInt64(&c.Hits, 1)
	atomic.AddUint64(&c.lost, 1) // want "not 8-byte aligned"
}

// ReadMixed reads Hits plainly even though Bump accesses it
// atomically: the race atomicfield exists to catch.
func (c *Counters) ReadMixed() int64 {
	return c.Hits // want "accessed atomically"
}

// WriteMixed writes lost plainly.
func (c *Counters) WriteMixed() {
	c.lost = 0 // want "accessed atomically"
}

// Reset overwrites a typed atomic wholesale instead of calling Store.
func (c *Counters) Reset(o *Counters) {
	c.seq = o.seq // want "assigned directly"
}

// --- correct patterns: must stay silent --------------------------------

// AllAtomic only ever touches its field through sync/atomic.
type AllAtomic struct {
	n int64
}

// Inc is atomic.
func (a *AllAtomic) Inc() { atomic.AddInt64(&a.n, 1) }

// Load is atomic.
func (a *AllAtomic) Load() int64 { return atomic.LoadInt64(&a.n) }

// PlainOnly is never atomic, so plain access is fine.
type PlainOnly struct {
	n int64
}

// Touch reads and writes plainly: no atomic use anywhere, no finding.
func (p *PlainOnly) Touch() int64 {
	p.n++
	return p.n
}

// TypedOK uses the typed atomic correctly.
func (c *Counters) TypedOK() uint32 {
	c.seq.Store(1)
	return c.seq.Load()
}
