// Package b proves the check is program-wide: the atomic use lives in
// package a, the plain access here.
package b

import "atomfix/a"

// Peek reads a field that package a accesses atomically.
func Peek(c *a.Counters) int64 {
	return c.Hits // want "accessed atomically"
}
