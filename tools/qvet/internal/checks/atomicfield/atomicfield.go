// Package atomicfield enforces all-or-nothing atomicity on struct
// fields: once any code passes &s.f to a sync/atomic function, every
// other access to that field must also go through sync/atomic — a plain
// read or write races with the atomic users (the lockset intuition of
// Eraser applied to Go's memory model). Two supporting rules ride
// along: 64-bit raw atomics are checked for 8-byte alignment under
// 32-bit layout (the pre-go1.19 trap the issue names for fields like
// fwdFrame/phaseStart), and typed atomic.* fields must never be
// assigned or copied wholesale — Store/Load are the only sanctioned
// access.
//
// The check is program-wide: a field collected in one package is flagged
// on plain access from any other loaded package. Init-time plain writes
// that are provably pre-concurrency can be suppressed with
// //qvet:allow=atomicfield and a reason.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"qserve/tools/qvet/internal/core"
)

// Analyzer is the atomicfield check.
var Analyzer = &core.Analyzer{
	Name:       "atomicfield",
	Doc:        "fields accessed via sync/atomic are never accessed plainly; 64-bit raw atomics are alignment-safe",
	RunProgram: runProgram,
}

// atomicUse records one sync/atomic call on a field.
type atomicUse struct {
	pos token.Pos
	fn  string
}

func runProgram(prog *core.Program, report core.Reporter) error {
	// Pass 1: collect every field whose address feeds a sync/atomic
	// call, keyed world-independently (the same field is a different
	// types.Var depending on whether its package was loaded from source
	// or export data).
	fields := make(map[string]atomicUse)
	marked := make(map[ast.Node]bool) // &x.f nodes already blessed as atomic
	for _, pkg := range prog.Packages {
		collect(prog, pkg, fields, marked, report)
	}
	if len(fields) == 0 {
		return nil
	}
	// Pass 2: flag plain accesses to collected fields.
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || marked[sel] {
					return true
				}
				f := fieldOf(pkg.Info, sel)
				if f == nil {
					return true
				}
				if use, ok := fields[fieldKey(prog, pkg.Info, sel, f)]; ok {
					report(sel.Pos(), "plain access to field %s, which is accessed atomically at %s (%s); every access must go through sync/atomic", f.Name(), prog.Fset.Position(use.pos), use.fn)
				}
				return true
			})
		}
	}
	return nil
}

func collect(prog *core.Program, pkg *core.Package, fields map[string]atomicUse, marked map[ast.Node]bool, report core.Reporter) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				name := atomicFuncName(pkg.Info, n)
				if name == "" || len(n.Args) == 0 {
					return true
				}
				un, ok := unparen(n.Args[0]).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				sel, ok := unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				f := fieldOf(pkg.Info, sel)
				if f == nil {
					return true
				}
				marked[sel] = true
				key := fieldKey(prog, pkg.Info, sel, f)
				if _, seen := fields[key]; !seen {
					fields[key] = atomicUse{pos: n.Pos(), fn: "atomic." + name}
				}
				if strings.Contains(name, "64") {
					checkAlignment(prog, pkg, sel, f, report)
				}
			case *ast.AssignStmt:
				// Typed atomic.* values must not be copied or replaced
				// wholesale.
				for _, lhs := range n.Lhs {
					if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
						if f := fieldOf(pkg.Info, sel); f != nil && isTypedAtomic(f.Type()) {
							report(n.Pos(), "typed %s field %s assigned directly; use its Store method", types.TypeString(f.Type(), nil), f.Name())
						}
					}
				}
			}
			return true
		})
	}
}

// checkAlignment verifies the 64-bit raw-atomic field is 8-byte aligned
// under 32-bit (GOARCH=386) struct layout, where the pre-go1.19 runtime
// only guarantees 4-byte field alignment and a misaligned 64-bit atomic
// faults.
func checkAlignment(prog *core.Program, pkg *core.Package, sel *ast.SelectorExpr, f *types.Var, report core.Reporter) {
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	st, ok := recv.Underlying().(*types.Struct)
	if !ok {
		return
	}
	var all []*types.Var
	idx := -1
	for i := 0; i < st.NumFields(); i++ {
		all = append(all, st.Field(i))
		if st.Field(i) == f {
			idx = i
		}
	}
	if idx < 0 {
		return
	}
	sizes := types.SizesFor("gc", "386")
	offsets := sizes.Offsetsof(all)
	if offsets[idx]%8 != 0 {
		typed := "atomic.Int64"
		if strings.HasPrefix(types.TypeString(f.Type(), nil), "u") {
			typed = "atomic.Uint64"
		}
		report(sel.Pos(), "64-bit atomic access to field %s at 32-bit struct offset %d (not 8-byte aligned); move it to the front of the struct or use %s", f.Name(), offsets[idx], typed)
	}
}

func atomicFuncName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return ""
	}
	return fn.Name()
}

func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// fieldKey is a world-independent identity for a struct field. The same
// field is a distinct types.Var (with a distinct declaration position)
// depending on whether its package was type-checked from source or
// loaded from export data, so the key is built from names: the selector
// receiver's named type plus the field name. Embedded promotion can
// alias two keys to one field, which only errs toward reporting.
func fieldKey(prog *core.Program, info *types.Info, sel *ast.SelectorExpr, f *types.Var) string {
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	if s, ok := info.Selections[sel]; ok {
		t := s.Recv()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + f.Name()
		}
	}
	return pkg + "." + f.Name()
}

func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
