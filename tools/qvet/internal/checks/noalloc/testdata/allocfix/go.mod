module allocfix

go 1.22
