// Package a seeds noalloc violations: heap escapes in annotated
// functions, directly and through helper chains, next to the pooled
// patterns the engine's reply path actually uses.
package a

var sink *int

// Direct escapes in its own body: new(int) is stored in a global, so
// escape analysis moves it to the heap.
//
//qvet:noalloc
func Direct() {
	p := new(int) // want "heap escape in //qvet:noalloc function Direct"
	sink = p
}

// Transitive reaches an allocation two helpers deep. The helpers are
// noinline so the escape verdict stays attributed to inner (inlining
// would replay the verdict at every inline site, which the live engine
// tolerates but would make this fixture nondeterministic).
//
//qvet:noalloc
func Transitive() int {
	return outer()
}

//go:noinline
func outer() int { return inner() }

//go:noinline
func inner() int {
	buf := make([]int, 9000) // want "heap escape reached from //qvet:noalloc function Transitive via outer"
	return len(buf) + cap(buf)
}

// Allowed has a blessed warm-up allocation: the pool-growth pattern.
//
//qvet:noalloc
func Allowed(pool [][]byte, n int) [][]byte {
	for len(pool) < n {
		pool = append(pool, make([]byte, 1<<16)) //qvet:allow=noalloc pool warm-up growth
	}
	return pool
}

// --- correct patterns: must stay silent --------------------------------

type scratch struct {
	buf []byte
}

// Reuse appends into pooled storage: append growth is amortized pool
// state, not a steady-state escape, and -m does not report it.
//
//qvet:noalloc
func (s *scratch) Reuse(b []byte) int {
	s.buf = append(s.buf[:0], b...)
	return len(s.buf)
}

// Trusted calls another annotated function; the callee's own check
// covers its body, so the caller does not re-traverse it.
//
//qvet:noalloc
func Trusted(s *scratch, b []byte) int {
	return s.Reuse(b)
}

// stackOnly allocates but it stays on the stack: no verdict, no report.
//
//qvet:noalloc
func StackOnly() int {
	var local [64]int
	for i := range local {
		local[i] = i
	}
	return local[63]
}
