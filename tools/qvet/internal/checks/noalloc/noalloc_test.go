package noalloc_test

import (
	"testing"

	"qserve/tools/qvet/internal/analysistest"
	"qserve/tools/qvet/internal/checks/noalloc"
	"qserve/tools/qvet/internal/core"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata/allocfix", []*core.Analyzer{noalloc.Analyzer})
}
