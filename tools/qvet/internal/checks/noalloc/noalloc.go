// Package noalloc gives the benchmark allocation gates a static
// counterpart: a function annotated //qvet:noalloc must produce no heap
// escapes — neither in its own body nor in any function it statically
// reaches — according to the gc compiler's escape analysis
// (go build -gcflags=-m). Where BenchmarkReplyPhaseAllocs can only say
// "1 alloc/op appeared", this check names the escaping line the moment
// it is written.
//
// Rules:
//   - Escape verdicts inside the annotated function's line range are
//     reported at the escaping line.
//   - The check is transitive over the static call graph through
//     unannotated helpers; a callee that is itself //qvet:noalloc is
//     trusted (its own check covers it).
//   - //qvet:allow=noalloc on the escaping line (with a reason) exempts
//     a site everywhere — used for provable warm-up-only growth such as
//     pool resizing.
//   - Calls into the standard library produce no edges; their internal
//     allocations are invisible, but argument boxing at the call site
//     (the usual cost, e.g. log.Printf operands) is reported in the
//     caller by -m and therefore caught.
//   - Slice append growth is not reported by -m (backing arrays are
//     amortized pool state), which matches the engine's pooled-buffer
//     design: steady-state zero-alloc with high-water reuse.
package noalloc

import (
	"fmt"
	"go/token"

	"qserve/tools/qvet/internal/core"
)

// Analyzer is the noalloc check.
var Analyzer = &core.Analyzer{
	Name:        "noalloc",
	Doc:         "//qvet:noalloc functions have no heap escapes, transitively over static calls",
	NeedEscapes: true,
	RunProgram:  runProgram,
}

type site struct {
	fi   *core.FuncInfo
	line int
	msg  string
}

func runProgram(prog *core.Program, report core.Reporter) error {
	if prog.Escapes == nil {
		return fmt.Errorf("escape index not loaded")
	}
	g := prog.EnsureGraph()
	direct := make(map[string][]site)

	for _, fi := range g.Funcs {
		if fi.Annot == nil || !fi.Annot.NoAlloc {
			continue
		}
		checkRoot(prog, g, fi, direct, report)
	}
	return nil
}

func checkRoot(prog *core.Program, g *core.Graph, root *core.FuncInfo, direct map[string][]site, report core.Reporter) {
	// Own-body escapes, reported at the escaping line.
	for _, s := range directSites(prog, g, root.Key, direct) {
		report(posOnLine(prog, s), "heap escape in //qvet:noalloc function %s: %s", root.Name, s.msg)
	}
	// Transitive closure through unannotated callees.
	visited := map[string]bool{root.Key: true}
	var walk func(fi *core.FuncInfo, chain []string)
	walk = func(fi *core.FuncInfo, chain []string) {
		for _, call := range fi.Calls {
			callee := g.Funcs[call.CalleeKey]
			if callee == nil {
				continue // stdlib or dynamic: no body to inspect
			}
			if callee.Annot != nil && callee.Annot.NoAlloc {
				continue // trusted: has its own check
			}
			if visited[callee.Key] {
				continue
			}
			visited[callee.Key] = true
			for _, s := range directSites(prog, g, callee.Key, direct) {
				report(posOnLine(prog, s), "heap escape reached from //qvet:noalloc function %s%s in %s: %s", root.Name, chainSuffix(chain), callee.Name, s.msg)
			}
			walk(callee, append(chain, callee.Name))
		}
	}
	walk(root, nil)
}

// directSites returns the unsuppressed escape verdicts inside one
// function's body, memoized. Allow filtering happens here, at the site,
// so an exempted line stops counting for every transitive root as well.
func directSites(prog *core.Program, g *core.Graph, key string, direct map[string][]site) []site {
	if s, ok := direct[key]; ok {
		return s
	}
	fi := g.Funcs[key]
	sites := []site{}
	if lines := prog.Escapes.ByFile[fi.File]; lines != nil {
		for line := fi.StartLine; line <= fi.EndLine; line++ {
			for _, msg := range lines[line] {
				if prog.Annots.Allowed("noalloc", token.Position{Filename: fi.File, Line: line}) {
					continue
				}
				sites = append(sites, site{fi: fi, line: line, msg: msg})
			}
		}
	}
	direct[key] = sites
	return sites
}

// posOnLine maps a site back to a token.Pos on its line so the standard
// reporting (and its allow filter) can resolve it. The declaration
// file's token.File gives line starts.
func posOnLine(prog *core.Program, s site) token.Pos {
	tf := prog.Fset.File(s.fi.Decl.Pos())
	if tf == nil || s.line > tf.LineCount() {
		return s.fi.Decl.Pos()
	}
	return tf.LineStart(s.line)
}

func chainSuffix(chain []string) string {
	if len(chain) == 0 {
		return ""
	}
	out := " via "
	for i, c := range chain {
		if i > 0 {
			out += " -> "
		}
		out += c
	}
	return out
}
