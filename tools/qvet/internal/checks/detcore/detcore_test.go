package detcore_test

import (
	"testing"

	"qserve/tools/qvet/internal/analysistest"
	"qserve/tools/qvet/internal/checks/detcore"
	"qserve/tools/qvet/internal/core"
)

func TestDetcore(t *testing.T) {
	analysistest.Run(t, "testdata/detfix", []*core.Analyzer{detcore.Analyzer})
}
