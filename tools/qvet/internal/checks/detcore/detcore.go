// Package detcore enforces the determinism contract (DESIGN.md §11):
// world evolution must be a pure function of (state, inputs, seed), or
// replay bit-identity (§11) and digest-exact crash recovery (§12) break
// frames after the divergence with no pointer back to the cause.
//
// A function annotated //qvet:det is a determinism root. Its transitive
// static call closure — through any chain of unannotated helpers — may
// not reach:
//
//   - wall-clock reads or timer constructors (time.Now, time.Since,
//     time.Until, time.After, time.Tick, time.NewTicker, time.NewTimer,
//     time.AfterFunc);
//   - the process-global math/rand (package-level Intn, Float64, ...,
//     whose shared source is seeded per-process); constructors (rand.New,
//     rand.NewSource, ...) and methods on an explicit *rand.Rand are
//     allowed, because a deliberately seeded source is the worldmap
//     generator's documented mechanism;
//   - a range over a map, unless the loop body is provably
//     order-insensitive or the range carries //qvet:allow=maporder with
//     a reason. Map iteration order is randomized per run, so an
//     order-sensitive body diverges between record and replay even
//     though every individual operation is deterministic.
//
// A loop body is accepted as order-insensitive when every statement is
// one of: a write through a map index (plain assignment always; += / ++
// only when the element type is an integer, where accumulation
// commutes); delete on a map; integer accumulation into local
// variables; append onto a slice variable that is passed to a sort
// (sort.Slice/Strings/Ints/..., slices.Sort*) after the loop in the
// same function; or control flow (if/for/switch/block/continue/break)
// over only such statements. Everything else — sends, returns, calls,
// float accumulation — is treated as order-sensitive.
//
// Soundness gap (documented): the closure runs over the static call
// graph, so calls through interfaces, function values, and reflection
// are invisible, and a map range inside a function literal is attributed
// to the enclosing function.
package detcore

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"qserve/tools/qvet/internal/core"
)

// Analyzer is the detcore check.
var Analyzer = &core.Analyzer{
	Name:       "detcore",
	Doc:        "//qvet:det closures avoid wall clock, global math/rand, and order-sensitive map iteration",
	RunProgram: runProgram,
}

// wallClock is the banned set of time-package entry points: reads of the
// wall/monotonic clock and timer constructors (a timer firing is a
// scheduler-dependent event, unusable in deterministic code).
var wallClock = map[string]bool{
	"time.Now":       true,
	"time.Since":     true,
	"time.Until":     true,
	"time.After":     true,
	"time.Tick":      true,
	"time.NewTicker": true,
	"time.NewTimer":  true,
	"time.AfterFunc": true,
}

// sortCalls are recognized as "feeds a sort": an append target passed to
// one of these after the loop makes the append order irrelevant.
var sortCalls = map[string]bool{
	"sort.Slice":            true,
	"sort.SliceStable":      true,
	"sort.Sort":             true,
	"sort.Stable":           true,
	"sort.Strings":          true,
	"sort.Ints":             true,
	"sort.Float64s":         true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.SortStableFunc": true,
}

func runProgram(prog *core.Program, report core.Reporter) error {
	g := prog.EnsureGraph()

	// Deterministic root order so diagnostics attribute a stable
	// root/path when several roots reach the same helper.
	var roots []*core.FuncInfo
	for _, fi := range g.Funcs {
		if fi.Annot != nil && fi.Annot.Det {
			roots = append(roots, fi)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Key < roots[j].Key })

	visited := make(map[string]bool)
	for _, root := range roots {
		if visited[root.Key] {
			continue
		}
		visited[root.Key] = true
		walk(prog, g, root, root, nil, visited, report)
	}
	return nil
}

// walk checks fi's body and descends into unannotated callees. Each
// function is checked once, attributed to the first root that reached
// it; path is the helper chain from root to fi.
func walk(prog *core.Program, g *core.Graph, root, fi *core.FuncInfo, path []*core.FuncInfo, visited map[string]bool, report core.Reporter) {
	checkBody(prog, root, fi, path, report)
	for i := range fi.Calls {
		call := &fi.Calls[i]
		if key := call.CalleeKey; banned(key) {
			report(call.Pos, "determinism root %s reaches %s%s; //qvet:det code must be a pure function of (state, inputs, seed)", root.Name, bannedName(key), chainString(fi, root, path))
			continue
		}
		callee := g.Funcs[call.CalleeKey]
		if callee == nil {
			continue // stdlib, interface method, or bodyless: no edge
		}
		if callee.Annot != nil && callee.Annot.Det {
			continue // annotated callee is its own root
		}
		if visited[callee.Key] {
			continue
		}
		visited[callee.Key] = true
		walk(prog, g, root, callee, append(path, callee), visited, report)
	}
}

// banned reports whether a callee key is a wall-clock read or a
// process-global math/rand call. Package-level rand constructors (New,
// NewSource, NewPCG, ...) and *rand.Rand methods survive: both operate
// on an explicitly seeded source.
func banned(key string) bool {
	if wallClock[key] {
		return true
	}
	for _, pkg := range []string{"math/rand.", "math/rand/v2."} {
		name, ok := strings.CutPrefix(key, pkg)
		if !ok {
			continue
		}
		if strings.Contains(name, ".") {
			return false // method on Rand/Source/Zipf: explicit source
		}
		return !strings.HasPrefix(name, "New")
	}
	return false
}

func bannedName(key string) string {
	if wallClock[key] {
		return key
	}
	return key + " (process-global math/rand)"
}

func chainString(fi *core.FuncInfo, root *core.FuncInfo, path []*core.FuncInfo) string {
	if fi == root {
		return ""
	}
	s := " via "
	for i, e := range path {
		if i > 0 {
			s += " -> "
		}
		s += e.Name
	}
	return s
}

// checkBody flags order-sensitive ranges over maps in fi's body.
func checkBody(prog *core.Program, root, fi *core.FuncInfo, path []*core.FuncInfo, report core.Reporter) {
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if prog.Annots.Allowed("maporder", prog.Fset.Position(rng.Pos())) {
			return true
		}
		if orderInsensitive(info, fi.Decl.Body, rng) {
			return true
		}
		report(rng.Pos(), "range over map %s in %s is order-sensitive (reached from //qvet:det root %s%s); iterate sorted keys, make the body commutative, or annotate //qvet:allow=maporder with a reason", typeString(tv.Type), fi.Name, root.Name, chainString(fi, root, path))
		return true
	})
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// orderInsensitive reports whether the range body commutes across
// iteration orders under the conservative statement grammar described in
// the package comment.
func orderInsensitive(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt) bool {
	// Slice variables the loop appends to; each must reach a sort call
	// after the loop.
	appendTargets := make(map[types.Object]bool)
	if !stmtsInsensitive(info, rng.Body.List, appendTargets) {
		return false
	}
	for obj := range appendTargets {
		if !sortedAfter(info, fnBody, rng, obj) {
			return false
		}
	}
	return true
}

func stmtsInsensitive(info *types.Info, stmts []ast.Stmt, appendTargets map[types.Object]bool) bool {
	for _, s := range stmts {
		if !stmtInsensitive(info, s, appendTargets) {
			return false
		}
	}
	return true
}

func stmtInsensitive(info *types.Info, s ast.Stmt, appendTargets map[types.Object]bool) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.DEFINE {
			return true // fresh per-iteration locals are harmless
		}
		for i, lhs := range s.Lhs {
			if !assignTargetInsensitive(info, s, i, lhs, appendTargets) {
				return false
			}
		}
		return true
	case *ast.IncDecStmt:
		return integerWriteTarget(info, s.X)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if !stmtInsensitiveBlock(info, s.Body, appendTargets) {
			return false
		}
		if s.Else != nil {
			return stmtInsensitive(info, s.Else, appendTargets)
		}
		return true
	case *ast.BlockStmt:
		return stmtsInsensitive(info, s.List, appendTargets)
	case *ast.ForStmt:
		return stmtInsensitiveBlock(info, s.Body, appendTargets)
	case *ast.RangeStmt:
		// A nested map range is checked on its own; for order purposes
		// only the statements matter.
		return stmtInsensitiveBlock(info, s.Body, appendTargets)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if !stmtsInsensitive(info, cc.Body, appendTargets) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.DeclStmt:
		return true
	}
	return false
}

func stmtInsensitiveBlock(info *types.Info, b *ast.BlockStmt, appendTargets map[types.Object]bool) bool {
	return b != nil && stmtsInsensitive(info, b.List, appendTargets)
}

// assignTargetInsensitive classifies one LHS of a non-define assignment.
func assignTargetInsensitive(info *types.Info, as *ast.AssignStmt, i int, lhs ast.Expr, appendTargets map[types.Object]bool) bool {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return false
		}
		// s = append(s, ...): provisionally fine, must feed a sort.
		if as.Tok == token.ASSIGN && len(as.Lhs) == len(as.Rhs) && isSelfAppend(info, obj, as.Rhs[i]) {
			appendTargets[obj] = true
			return true
		}
		// x += e / x |= e on an integer local: commutative accumulation.
		if as.Tok != token.ASSIGN {
			return integerObj(obj)
		}
		return false
	}
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		tv, ok := info.Types[idx.X]
		if !ok {
			return false
		}
		m, isMap := tv.Type.Underlying().(*types.Map)
		if !isMap {
			return false
		}
		if as.Tok == token.ASSIGN {
			return true // set-style write, keyed independently of order
		}
		return isInteger(m.Elem())
	}
	return false
}

func isSelfAppend(info *types.Info, obj types.Object, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && info.Uses[arg] == obj
}

// sortedAfter reports whether obj is passed to a recognized sort call
// positioned after the range statement within the same function body.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		callee := core.CalleeOf(info, call)
		if callee == nil || !sortCalls[core.FuncKey(callee)] {
			return true
		}
		arg := call.Args[0]
		if id, ok := arg.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

func integerWriteTarget(info *types.Info, x ast.Expr) bool {
	switch x := x.(type) {
	case *ast.Ident:
		return integerObj(info.Uses[x])
	case *ast.IndexExpr:
		tv, ok := info.Types[x.X]
		if !ok {
			return false
		}
		if m, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return isInteger(m.Elem())
		}
	}
	return false
}

func integerObj(obj types.Object) bool {
	return obj != nil && isInteger(obj.Type())
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
