// Package a seeds determinism violations: wall-clock reads and global
// math/rand reached through helpers, plus order-sensitive map ranges.
package a

import (
	"math/rand"
	"sort"
	"time"
)

// --- seeded violations -------------------------------------------------

// Step is a determinism root; its closure reaches the wall clock two
// helpers deep and the process-global rand one helper deep.
//
//qvet:det
func Step(state map[int]int) {
	tickHelper()
	jitter()
	for k, v := range state { // want "range over map map\\[int\\]int in Step is order-sensitive"
		if v > 0 {
			sink = k
		}
	}
}

var sink int

func tickHelper() {
	stamp()
}

func stamp() {
	now = time.Now() // want "determinism root Step reaches time.Now via tickHelper -> stamp"
}

var now time.Time

func jitter() {
	sink = rand.Intn(8) // want "determinism root Step reaches math/rand.Intn \\(process-global math/rand\\) via jitter"
}

// Elapsed is itself a root: the banned call sits directly in the root.
//
//qvet:det
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "determinism root Elapsed reaches time.Since"
}

// --- correct patterns: must stay silent --------------------------------

// Settle ranges over maps in every accepted order-insensitive shape.
//
//qvet:det
func Settle(pending map[int]int, dead map[int]bool) int {
	// Writes keyed through a map index plus integer accumulation.
	total := 0
	next := make(map[int]int, len(pending))
	for id, v := range pending {
		if v == 0 {
			delete(pending, id)
			continue
		}
		next[id] = v - 1
		total += v
	}
	// Appends feeding a sort before use.
	ids := make([]int, 0, len(dead))
	for id := range dead {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		total -= id
	}
	return total
}

// Seeded uses an explicitly seeded source: the documented worldmap
// mechanism, allowed by detcore.
//
//qvet:det
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}

// Waived carries the escape hatch with a reason.
//
//qvet:det
func Waived(m map[string]chan int) {
	//qvet:allow=maporder all receivers get the same value; delivery order is not replayed
	for _, ch := range m {
		ch <- 1
	}
}

// Clock is NOT det-annotated and not reached from any root: free to
// read the wall clock.
func Clock() time.Time {
	return time.Now()
}
