// Package globalstate enforces the instancing contract of DESIGN.md
// §13: engine packages declare no package-level mutable state, so any
// number of server instances can share one process without observing
// each other. A package-level `var` of pointer, map, slice, array,
// chan, func, struct, or (non-error) interface type is shared by every
// instance in the process — exactly the kind of seam that made the
// pre-instancing test hooks leak across engines.
//
// Structural exemptions:
//   - error-typed vars: sentinel errors are immutable by convention and
//     package-level by necessity (errors.Is identity).
//   - the blank identifier: `var _ Iface = (*T)(nil)` assertions hold
//     no state.
//   - basic-typed vars (ints, strings, bools): out of the issue's
//     blast radius; constants should be used, but they cannot alias
//     cross-instance structures.
//
// Intentional shared state — true process-wide pools and immutable
// tables that merely lack a const form — carries
// //qvet:allow=globalstate with the isolation argument as its reason.
package globalstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"qserve/tools/qvet/internal/core"
)

// Analyzer is the globalstate check.
var Analyzer = &core.Analyzer{
	Name: "globalstate",
	Doc:  "engine packages hold no package-level mutable state, keeping instances isolatable",
	Run:  run,
}

// engineSuffixes names the packages the isolation contract covers: the
// transitive state of one match instance. Driver tiers (cmd/*,
// experiments, botclient, conformance) legitimately hold process-wide
// state and are out of scope.
var engineSuffixes = []string{
	"/internal/server",
	"/internal/game",
	"/internal/entity",
	"/internal/areanode",
	"/internal/transport",
	"/internal/metrics",
	"/internal/locking",
	"/internal/physics",
	"/internal/collide",
	"/internal/protocol",
	"/internal/geom",
	"/internal/balance",
	"/internal/match",
	"/internal/checkpoint",
	"/internal/worldmap",
	"/internal/replay",
	"/internal/simserver",
}

func inScope(path string) bool {
	for _, s := range engineSuffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

func run(pass *core.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj := pass.Info.Defs[name]
					if obj == nil {
						continue
					}
					if kind := mutableKind(obj.Type()); kind != "" {
						pass.Reportf(name.Pos(),
							"package-level var %s (%s type) is state shared by every engine instance in the process; move it onto the server/world/pool instance, or annotate //qvet:allow=globalstate with the isolation argument",
							name.Name, kind)
					}
				}
			}
		}
	}
	return nil
}

// mutableKind classifies a type as instance-leaking shared state,
// returning "" for the structurally exempt kinds.
func mutableKind(t types.Type) string {
	if isErrorType(t) {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Pointer:
		return "pointer"
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	case *types.Array:
		return "array"
	case *types.Chan:
		return "chan"
	case *types.Signature:
		return "func"
	case *types.Struct:
		return "struct"
	case *types.Interface:
		return "interface"
	}
	return ""
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
