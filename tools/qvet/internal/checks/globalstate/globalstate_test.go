package globalstate_test

import (
	"testing"

	"qserve/tools/qvet/internal/analysistest"
	"qserve/tools/qvet/internal/checks/globalstate"
	"qserve/tools/qvet/internal/core"
)

func TestGlobalState(t *testing.T) {
	analysistest.Run(t, "testdata/globalfix", []*core.Analyzer{globalstate.Analyzer})
}
