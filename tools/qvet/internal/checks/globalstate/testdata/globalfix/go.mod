module globalfix

go 1.22
