// Package main is outside the engine scope (no /internal/<engine-pkg>
// suffix): process-wide state in driver tiers is legitimate and must
// not be flagged.
package main

var registry = map[string]func(){}
var defaults = []string{"a", "b"}

func main() {
	_ = registry
	_ = defaults
}
