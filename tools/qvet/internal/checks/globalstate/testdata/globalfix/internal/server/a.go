// Package server is an engine-scoped fixture: its import path ends in
// /internal/server, so every mutable package-level var here is a
// finding.
package server

import "errors"

type pool struct {
	free [][]byte
}

type Engine interface {
	Step() bool
}

type eng struct{}

func (eng) Step() bool { return true }

// Mutable kinds: all flagged.
var sharedPool pool               // want "package-level var sharedPool \\(struct type\\) is state shared by every engine instance"
var byName = map[string]int{}     // want "package-level var byName \\(map type\\) is state shared by every engine instance"
var scratch []byte                // want "package-level var scratch \\(slice type\\) is state shared by every engine instance"
var current *pool                 // want "package-level var current \\(pointer type\\) is state shared by every engine instance"
var hook func(int)                // want "package-level var hook \\(func type\\) is state shared by every engine instance"
var wake = make(chan struct{}, 1) // want "package-level var wake \\(chan type\\) is state shared by every engine instance"
var table [16]uint64              // want "package-level var table \\(array type\\) is state shared by every engine instance"
var active Engine                 // want "package-level var active \\(interface type\\) is state shared by every engine instance"
var a, b *pool                    // want "package-level var a \\(pointer type\\) is state shared by every engine instance" "package-level var b \\(pointer type\\) is state shared by every engine instance"

// Structurally exempt: sentinel errors, interface assertions, scalars.
var errFull = errors.New("full")
var _ Engine = eng{}
var defaultBudget = 64
var buildTag string
var verbose bool

// Annotated shared state is suppressed like any other check.
//
//qvet:allow=globalstate process-wide pool by design; holds no game state
var blessedPool pool

func use() {
	_ = sharedPool
	_ = byName
	_ = scratch
	_ = current
	_ = hook
	_ = wake
	_ = table
	_ = active
	_, _ = a, b
	_ = errFull
	_ = defaultBudget
	_ = buildTag
	_ = verbose
	_ = blessedPool
}
