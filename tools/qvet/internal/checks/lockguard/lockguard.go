// Package lockguard checks the region-locking protocol of §3.3: every
// locking.Guard produced by RegionLocker.Acquire (or a wrapper returning
// one, like LockContext.acquire) must be released on every path out of
// the function that owns it, and no second Acquire may happen while a
// guard is held — the leaf-ordered deadlock-freedom argument only covers
// one acquisition at a time per thread. It also enforces the guarded
// areanode discipline: a function that carries a *LockContext is part of
// a concurrent exec path and must use the Guarded link/unlink variants,
// never the bare ones (unless the function is explicitly annotated
// //qvet:phase=physics, the master-only lock-free phase).
//
// The analysis is an intraprocedural abstract interpretation over the
// AST: branches fork the tracked-guard state, reachable exits union it,
// and loop bodies are interpreted twice so a guard carried across the
// back edge trips the second-acquire rule. Passing or returning a guard
// value transfers ownership to the receiver and ends tracking (Release
// inside deferred closures is recognized). Paths that end in panic are
// exempt: the engine's recovery handler calls ReleaseAll.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"qserve/tools/qvet/internal/core"
)

// Analyzer is the lockguard check.
var Analyzer = &core.Analyzer{
	Name: "lockguard",
	Doc:  "locking.Guard released on all paths, no nested Acquire, guarded areanode links under a LockContext",
	Run:  run,
}

func run(pass *core.Pass) error {
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd.Body)
			c.checkGuardedLinks(fd)
		}
		// Function literals are separate ownership scopes: a guard
		// acquired inside a closure must be released inside it (or
		// escape); the enclosing function's interpretation skips them.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.checkFunc(lit.Body)
			}
			return true
		})
	}
	return nil
}

// state is the abstract guard state on one path: held maps a guard var
// to its acquire position while the release is still owed; defr holds
// guards whose Release is deferred (no longer leakable, but still locked
// until the function returns, so they count for the second-acquire
// rule).
type state struct {
	held map[*types.Var]token.Pos
	defr map[*types.Var]token.Pos
}

func newState() *state {
	return &state{held: map[*types.Var]token.Pos{}, defr: map[*types.Var]token.Pos{}}
}

func (s *state) clone() *state {
	n := newState()
	for v, p := range s.held {
		n.held[v] = p
	}
	for v, p := range s.defr {
		n.defr[v] = p
	}
	return n
}

func (s *state) union(o *state) {
	for v, p := range o.held {
		s.held[v] = p
	}
	for v, p := range o.defr {
		if _, held := s.held[v]; !held {
			s.defr[v] = p
		}
	}
}

func (s *state) tracked(v *types.Var) bool {
	_, h := s.held[v]
	_, d := s.defr[v]
	return h || d
}

func (s *state) drop(v *types.Var) {
	delete(s.held, v)
	delete(s.defr, v)
}

// checker interprets one function body at a time.
type checker struct {
	pass *core.Pass
	// breakables/continuables are the targets of unlabeled break and
	// continue; break-and-continue states merge into the innermost one.
	breakables   []*[]*state
	continuables []*[]*state
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	st := newState()
	if !c.stmts(body.List, st) {
		c.leakCheck(st, body.Rbrace, "the end of the function")
	}
}

func (c *checker) leakCheck(st *state, exit token.Pos, where string) {
	line := c.pass.Prog.Fset.Position(exit).Line
	for v, p := range st.held {
		c.pass.Reportf(p, "guard %q acquired here is not released on the path reaching %s (line %d); release it on all paths or use defer", v.Name(), where, line)
	}
}

// heldCheck fires the second-acquire rule at an Acquire call site.
func (c *checker) heldCheck(pos token.Pos, st *state) {
	for v, p := range st.held {
		c.pass.Reportf(pos, "Acquire while guard %q (acquired at %s) is still held; leaf-ordered locking forbids nested region acquisition", v.Name(), c.pass.Prog.Fset.Position(p))
		return
	}
	for v, p := range st.defr {
		c.pass.Reportf(pos, "Acquire while guard %q (acquired at %s) has only a deferred release and is still locked; leaf-ordered locking forbids nested region acquisition", v.Name(), c.pass.Prog.Fset.Position(p))
		return
	}
}

// stmts interprets a statement list, returning true when every path
// through it terminates (return, panic, branch out).
func (c *checker) stmts(list []ast.Stmt, st *state) bool {
	for _, s := range list {
		if c.stmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) stmt(s ast.Stmt, st *state) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.AssignStmt:
		c.assign(s.Lhs, s.Rhs, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					c.assign(lhs, vs.Values, st)
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if isPanic(call) {
				c.expr(s.X, st)
				return true
			}
			if c.isAcquire(call) {
				c.heldCheck(call.Pos(), st)
				c.pass.Reportf(call.Pos(), "Acquire result discarded; the guard must be stored and released")
				c.exprArgs(call, st)
				return false
			}
		}
		c.expr(s.X, st)
	case *ast.DeferStmt:
		c.deferStmt(s, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, st) // returning a guard transfers ownership (expr drops it)
		}
		c.leakCheck(st, s.Pos(), "the return")
		return true
	case *ast.BlockStmt:
		return c.stmts(s.List, st)
	case *ast.IfStmt:
		return c.ifStmt(s, st)
	case *ast.ForStmt:
		c.stmt(s.Init, st)
		c.expr(s.Cond, st)
		return c.loop(s.Body, s.Post, s.Cond != nil, st)
	case *ast.RangeStmt:
		c.expr(s.X, st)
		return c.loop(s.Body, nil, true, st)
	case *ast.SwitchStmt:
		c.stmt(s.Init, st)
		c.expr(s.Tag, st)
		return c.switchStmt(caseClauses(s.Body), nil, st, true)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, st)
		c.stmt(s.Assign, st)
		return c.switchStmt(caseClauses(s.Body), nil, st, true)
	case *ast.SelectStmt:
		return c.switchStmt(nil, commClauses(s.Body), st, false)
	case *ast.BranchStmt:
		return c.branch(s, st)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.GoStmt:
		c.expr(s.Call, st)
	case *ast.SendStmt:
		c.expr(s.Chan, st)
		c.expr(s.Value, st)
	case *ast.IncDecStmt:
		c.expr(s.X, st)
	}
	return false
}

// assign processes lhs... = rhs..., tracking guards produced by acquire
// calls assigned to plain variables.
func (c *checker) assign(lhs, rhs []ast.Expr, st *state) {
	for _, r := range rhs {
		c.expr(r, st)
	}
	if len(lhs) != len(rhs) {
		return
	}
	for i, r := range rhs {
		call, ok := unparen(r).(*ast.CallExpr)
		if !ok || !c.isAcquire(call) {
			// Overwriting a tracked var ends tracking of the old value.
			if id, ok := lhs[i].(*ast.Ident); ok {
				if v := c.varOf(id); v != nil {
					st.drop(v)
				}
			}
			continue
		}
		switch l := lhs[i].(type) {
		case *ast.Ident:
			if l.Name == "_" {
				c.pass.Reportf(call.Pos(), "Acquire result discarded into _; the guard must be stored and released")
				continue
			}
			if v := c.varOf(l); v != nil {
				st.held[v] = call.Pos()
			}
		default:
			// Stored into a field/element: ownership lives elsewhere;
			// stop tracking (nothing to track — never started).
		}
	}
}

func (c *checker) deferStmt(s *ast.DeferStmt, st *state) {
	if v := c.releaseTarget(s.Call); v != nil && st.tracked(v) {
		if p, ok := st.held[v]; ok {
			delete(st.held, v)
			st.defr[v] = p
		}
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		// defer func() { ...; g.Release(); ... }() — scan the closure
		// body for releases of guards tracked in this scope.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if v := c.releaseTarget(call); v != nil && st.tracked(v) {
				if p, ok := st.held[v]; ok {
					delete(st.held, v)
					st.defr[v] = p
				}
			}
			return true
		})
		return
	}
	c.expr(s.Call, st)
}

func (c *checker) ifStmt(s *ast.IfStmt, st *state) bool {
	c.stmt(s.Init, st)
	c.expr(s.Cond, st)
	thenSt := st.clone()
	thenTerm := c.stmts(s.Body.List, thenSt)
	elseSt := st.clone()
	elseTerm := false
	if s.Else != nil {
		elseTerm = c.stmt(s.Else, elseSt)
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		*st = *elseSt
	case elseTerm:
		*st = *thenSt
	default:
		*st = *thenSt
		st.union(elseSt)
	}
	return false
}

func (c *checker) loop(body *ast.BlockStmt, post ast.Stmt, maySkip bool, st *state) bool {
	var breaks, continues []*state
	c.breakables = append(c.breakables, &breaks)
	c.continuables = append(c.continuables, &continues)
	runBody := func(in *state) (*state, bool) {
		b := in.clone()
		term := c.stmts(body.List, b)
		if !term {
			c.stmt(post, b)
		}
		return b, term
	}
	b1, t1 := runBody(st)
	merged := st.clone()
	if !t1 {
		merged.union(b1)
	}
	for _, cs := range continues {
		merged.union(cs)
	}
	continues = continues[:0]
	// Second interpretation from the merged state: a guard still held
	// from iteration one meets iteration two's Acquire here.
	b2, t2 := runBody(merged)
	c.breakables = c.breakables[:len(c.breakables)-1]
	c.continuables = c.continuables[:len(c.continuables)-1]

	out := newState()
	reachable := false
	if maySkip {
		out.union(st)
		reachable = true
	}
	if !t2 {
		out.union(b2)
		reachable = true
	}
	for _, bs := range breaks {
		out.union(bs)
		reachable = true
	}
	*st = *out
	return !reachable
}

// switchStmt handles switch, type switch (cases != nil) and select
// (comms != nil). fallthroughDefault: when no default clause exists a
// switch can fall through with the entry state; a select without a
// default blocks until some clause runs.
func (c *checker) switchStmt(cases []*ast.CaseClause, comms []*ast.CommClause, st *state, isSwitch bool) bool {
	var breaks []*state
	c.breakables = append(c.breakables, &breaks)
	var outs []*state
	hasDefault := false
	n := 0
	handle := func(listEmpty bool, comm ast.Stmt, body []ast.Stmt) {
		n++
		if listEmpty {
			hasDefault = true
		}
		cs := st.clone()
		c.stmt(comm, cs)
		if !c.stmts(body, cs) {
			outs = append(outs, cs)
		}
	}
	for _, cc := range cases {
		for _, e := range cc.List {
			c.expr(e, st)
		}
		handle(cc.List == nil, nil, cc.Body)
	}
	for _, cc := range comms {
		handle(cc.Comm == nil, cc.Comm, cc.Body)
	}
	c.breakables = c.breakables[:len(c.breakables)-1]

	out := newState()
	reachable := false
	if isSwitch && !hasDefault {
		out.union(st) // no case matched: entry state flows through
		reachable = true
	}
	if !isSwitch && n == 0 {
		// empty select blocks forever
		*st = *newState()
		return true
	}
	for _, o := range outs {
		out.union(o)
		reachable = true
	}
	for _, bs := range breaks {
		out.union(bs)
		reachable = true
	}
	*st = *out
	return !reachable
}

func (c *checker) branch(s *ast.BranchStmt, st *state) bool {
	switch s.Tok {
	case token.BREAK:
		if n := len(c.breakables); n > 0 {
			*c.breakables[n-1] = append(*c.breakables[n-1], st.clone())
		}
		return true
	case token.CONTINUE:
		if n := len(c.continuables); n > 0 {
			*c.continuables[n-1] = append(*c.continuables[n-1], st.clone())
		}
		return true
	case token.GOTO:
		// Rare; treated as terminating without a leak check (documented
		// approximation).
		return true
	}
	return false // fallthrough: state unions into the switch exit
}

// expr scans an expression for guard events: Release calls, Acquire
// calls in non-assigned positions (second-acquire rule; ownership goes
// to the consuming expression), and uses of tracked guards that transfer
// ownership out of this function (call arguments, composite literals,
// address-taking). Selector access on a guard (g.Release, g.Covers) is
// not a transfer. Function literals are separate scopes and are skipped.
func (c *checker) expr(e ast.Expr, st *state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if v := c.releaseTarget(n); v != nil {
				st.drop(v)
				return false
			}
			if c.isAcquire(n) {
				c.heldCheck(n.Pos(), st)
			}
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				if v := c.varOf(id); v != nil && st.tracked(v) {
					return false
				}
			}
		case *ast.Ident:
			if v := c.varOf(n); v != nil && st.tracked(v) {
				st.drop(v) // ownership transferred out
			}
		}
		return true
	})
}

func (c *checker) exprArgs(call *ast.CallExpr, st *state) {
	for _, a := range call.Args {
		c.expr(a, st)
	}
}

// releaseTarget returns the guard variable when call is g.Release() on a
// tracked-typed variable.
func (c *checker) releaseTarget(call *ast.CallExpr) *types.Var {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	v := c.varOf(id)
	if v == nil || !isGuardType(v.Type()) {
		return nil
	}
	return v
}

// isAcquire reports whether the call produces a locking.Guard value.
// Matching on the result type (rather than the method name) covers both
// RegionLocker.Acquire and wrappers like LockContext.acquire.
func (c *checker) isAcquire(call *ast.CallExpr) bool {
	tv, ok := c.pass.Info.Types[call]
	if !ok {
		return false
	}
	return isGuardType(tv.Type)
}

func (c *checker) varOf(id *ast.Ident) *types.Var {
	if obj := c.pass.Info.Uses[id]; obj != nil {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
		return nil
	}
	if v, ok := c.pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// isGuardType matches the named type Guard from a package named
// "locking". Matching by package name (not full import path) lets the
// analysistest fixtures stub their own mini locking package.
func isGuardType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Guard" && obj.Pkg() != nil && obj.Pkg().Name() == "locking"
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func caseClauses(body *ast.BlockStmt) []*ast.CaseClause {
	var out []*ast.CaseClause
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			out = append(out, cc)
		}
	}
	return out
}

func commClauses(body *ast.BlockStmt) []*ast.CommClause {
	var out []*ast.CommClause
	for _, s := range body.List {
		if cc, ok := s.(*ast.CommClause); ok {
			out = append(out, cc)
		}
	}
	return out
}
