// Package areanode is a fixture stub of the engine's area-node tree:
// the guarded-link rule matches Link/Unlink methods on receivers from a
// package named "areanode".
package areanode

// Item is a linkable tree item.
type Item struct{ node int32 }

// Tree mirrors the real tree's linking API surface.
type Tree struct{ n int }

// Link links without parent guards (legal only in the physics phase).
func (t *Tree) Link(it *Item) { t.n++ }

// Unlink unlinks without parent guards.
func (t *Tree) Unlink(it *Item) { t.n-- }

// LinkGuarded links under a transient parent guard.
func (t *Tree) LinkGuarded(it *Item, guard func(int32)) { t.n++ }

// UnlinkGuarded unlinks under a transient parent guard.
func (t *Tree) UnlinkGuarded(it *Item, guard func(int32)) { t.n-- }
