// Package a seeds lockguard violations (leaked guards, nested Acquire,
// discarded guards, unguarded links) next to the correct patterns the
// engine actually uses, which must stay silent.
package a

import (
	"lockfix/areanode"
	"lockfix/locking"
)

// LockContext mirrors the engine's game.LockContext by name.
type LockContext struct {
	Locker *locking.RegionLocker
}

// World carries the tree and the lowercase link helpers.
type World struct {
	Tree areanode.Tree
}

func (w *World) link(it *areanode.Item)   { w.Tree.Link(it) }
func (w *World) unlink(it *areanode.Item) { w.Tree.Unlink(it) }

// --- seeded violations -------------------------------------------------

// LeakOnEarlyReturn forgets the guard on the error path.
func LeakOnEarlyReturn(rl *locking.RegionLocker, bad bool) int {
	g := rl.Acquire(1) // want "not released on the path reaching the return"
	if bad {
		return 0
	}
	g.Release()
	return 1
}

// LeakAtEnd never releases at all.
func LeakAtEnd(rl *locking.RegionLocker) {
	g := rl.Acquire(2) // want "not released on the path reaching the end of the function"
	_ = g.Covers(7)
}

// NestedAcquire holds one region while acquiring another.
func NestedAcquire(rl *locking.RegionLocker) {
	g := rl.Acquire(1)
	g2 := rl.Acquire(2) // want "still held"
	g2.Release()
	g.Release()
}

// NestedAcquireDeferred: a deferred release still holds the lock until
// return, so the second Acquire is just as illegal.
func NestedAcquireDeferred(rl *locking.RegionLocker) {
	g := rl.Acquire(1)
	defer g.Release()
	g2 := rl.Acquire(2) // want "deferred release"
	g2.Release()
}

// Discarded drops the guard on the floor.
func Discarded(rl *locking.RegionLocker) {
	rl.Acquire(3) // want "discarded"
}

// DiscardedBlank discards via the blank identifier.
func DiscardedBlank(rl *locking.RegionLocker) {
	_ = rl.Acquire(4) // want "discarded"
}

// LeakAcrossLoop re-acquires each iteration without releasing the
// previous guard: the second interpretation of the body catches the
// back-edge carry.
func LeakAcrossLoop(rl *locking.RegionLocker, n int) {
	var last locking.Guard
	for i := 0; i < n; i++ {
		last = rl.Acquire(i) // want "still held"
	}
	last.Release()
}

// BareLinkUnderContext uses the unguarded tree ops on a combat-style
// path that carries a LockContext.
func BareLinkUnderContext(w *World, it *areanode.Item, lc *LockContext) {
	w.Tree.Link(it)   // want "bare areanode.Link"
	w.Tree.Unlink(it) // want "bare areanode.Unlink"
}

// LowercaseLinkUnderContext calls the engine's unguarded helpers.
func LowercaseLinkUnderContext(w *World, it *areanode.Item, lc *LockContext) {
	w.link(it)   // want "unguarded link"
	w.unlink(it) // want "unguarded unlink"
}

// --- correct patterns: must stay silent --------------------------------

// DeferRelease is the spawn/remove pattern.
func DeferRelease(rl *locking.RegionLocker) {
	g := rl.Acquire(1)
	defer g.Release()
}

// ExplicitAllPaths releases on every exit, like ExecuteMove.
func ExplicitAllPaths(rl *locking.RegionLocker, early bool) int {
	g := rl.Acquire(1)
	if early {
		g.Release()
		return 0
	}
	g.Release()
	return 1
}

// DeferredClosureRelease is the fireRocket pattern: release inside a
// deferred closure that also does bookkeeping.
func DeferredClosureRelease(rl *locking.RegionLocker) {
	g := rl.Acquire(1)
	defer func() {
		g.Release()
	}()
}

// SequentialReacquire releases before acquiring the next region — the
// release-then-fire pattern of the weapon paths.
func SequentialReacquire(rl *locking.RegionLocker) {
	g := rl.Acquire(1)
	g.Release()
	g2 := rl.Acquire(2)
	g2.Release()
}

// TransferOut returns the guard: ownership moves to the caller, as in
// LockContext.acquire wrapping RegionLocker.Acquire.
func TransferOut(rl *locking.RegionLocker) locking.Guard {
	g := rl.Acquire(1)
	return g
}

// PassToHelper hands the guard to another function, which then owns it.
func PassToHelper(rl *locking.RegionLocker) {
	g := rl.Acquire(1)
	releaseLater(g)
}

func releaseLater(g locking.Guard) { g.Release() }

// PanicPath may panic while holding: the engine's recovery handler
// calls ReleaseAll, so lockguard exempts panic exits.
func PanicPath(rl *locking.RegionLocker, bad bool) {
	g := rl.Acquire(1)
	if bad {
		panic("contained by recoverWorker")
	}
	g.Release()
}

// LoopAcquireRelease acquires and releases within each iteration.
func LoopAcquireRelease(rl *locking.RegionLocker, n int) {
	for i := 0; i < n; i++ {
		g := rl.Acquire(i)
		g.Release()
	}
}

// GuardedLinksUnderContext is the legal exec-path pattern.
func GuardedLinksUnderContext(w *World, it *areanode.Item, lc *LockContext) {
	w.Tree.LinkGuarded(it, nil)
	w.Tree.UnlinkGuarded(it, nil)
}

// PhysicsPlainLinks is master-only lock-free phase code: bare links are
// legal there even though a LockContext parameter is in scope.
//
//qvet:phase=physics
func PhysicsPlainLinks(w *World, it *areanode.Item, lc *LockContext) {
	w.Tree.Link(it)
	w.link(it)
}
