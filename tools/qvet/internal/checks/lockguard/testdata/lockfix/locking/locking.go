// Package locking is a fixture stub of the engine's region-locking API:
// lockguard matches the Guard type by package name + type name, so the
// fixture never has to import the real (internal) engine packages.
package locking

// Guard mirrors qserve/internal/locking.Guard.
type Guard struct {
	leaves []int32
}

// Release mirrors the real idempotent release.
func (g Guard) Release() {}

// Covers is a read-only guard query.
func (g Guard) Covers(leaf int32) bool { return len(g.leaves) > 0 }

// RegionLocker mirrors the real locker's Acquire shape.
type RegionLocker struct{ held []int32 }

// Acquire returns a Guard over the requested region.
func (rl *RegionLocker) Acquire(region int) Guard {
	rl.held = append(rl.held, int32(region))
	return Guard{leaves: rl.held}
}
