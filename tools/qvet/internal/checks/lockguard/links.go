package lockguard

import (
	"go/ast"
	"go/types"

	"qserve/tools/qvet/internal/core"
)

// checkGuardedLinks enforces the guarded areanode discipline: any
// function that carries a *LockContext (parameter or receiver) runs on a
// concurrent exec path — move, combat, teleport — and must therefore use
// the Guarded variants of areanode linking. Bare areanode.Tree
// Link/Unlink calls, and the engine's lowercase link/unlink wrappers
// around them, mutate the tree without parent guards and are only legal
// in the master-only physics phase, so functions annotated
// //qvet:phase=physics are exempt.
func (c *checker) checkGuardedLinks(fd *ast.FuncDecl) {
	if !c.carriesLockContext(fd) {
		return
	}
	if a := c.pass.Prog.Annots.FuncOf(fd); a != nil && a.Phase == core.PhasePhysics {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Link", "Unlink":
			if c.recvFromAreanode(sel) {
				c.pass.Reportf(call.Pos(), "bare areanode.%s in a LockContext-carrying function; use %sGuarded with the context's parent guard", sel.Sel.Name, sel.Sel.Name)
			}
		case "link", "unlink":
			c.pass.Reportf(call.Pos(), "unguarded %s in a LockContext-carrying function; use %sGuarded", sel.Sel.Name, sel.Sel.Name)
		}
		return true
	})
}

// carriesLockContext reports whether the function's receiver or any
// parameter is a (pointer to) named type LockContext. Matching by type
// name keeps the rule fixture-friendly, mirroring isGuardType.
func (c *checker) carriesLockContext(fd *ast.FuncDecl) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			tv, ok := c.pass.Info.Types[f.Type]
			if !ok {
				continue
			}
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == "LockContext" {
				return true
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params)
}

// recvFromAreanode reports whether the method's receiver type is
// declared in a package named "areanode".
func (c *checker) recvFromAreanode(sel *ast.SelectorExpr) bool {
	s, ok := c.pass.Info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == "areanode"
}
