package lockguard_test

import (
	"testing"

	"qserve/tools/qvet/internal/analysistest"
	"qserve/tools/qvet/internal/checks/lockguard"
	"qserve/tools/qvet/internal/core"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata/lockfix", []*core.Analyzer{lockguard.Analyzer})
}
