// Package checks registers the qvet analyzer suite.
package checks

import (
	"qserve/tools/qvet/internal/checks/annotcheck"
	"qserve/tools/qvet/internal/checks/atomicfield"
	"qserve/tools/qvet/internal/checks/globalstate"
	"qserve/tools/qvet/internal/checks/lockguard"
	"qserve/tools/qvet/internal/checks/noalloc"
	"qserve/tools/qvet/internal/checks/phasecheck"
	"qserve/tools/qvet/internal/core"
)

// All returns every analyzer in suite order.
func All() []*core.Analyzer {
	return []*core.Analyzer{
		annotcheck.Analyzer,
		lockguard.Analyzer,
		atomicfield.Analyzer,
		phasecheck.Analyzer,
		noalloc.Analyzer,
		globalstate.Analyzer,
	}
}

// ValidChecks is the closed set of names //qvet:allow may reference.
// The annot meta-check is excluded on purpose: allow must not be able
// to suppress annotation-rot reports.
func ValidChecks() map[string]bool {
	m := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "annot" {
			continue
		}
		m[a.Name] = true
	}
	return m
}
