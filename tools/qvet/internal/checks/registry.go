// Package checks registers the qvet analyzer suite.
package checks

import (
	"qserve/tools/qvet/internal/checks/annotcheck"
	"qserve/tools/qvet/internal/checks/atomicfield"
	"qserve/tools/qvet/internal/checks/detcore"
	"qserve/tools/qvet/internal/checks/globalstate"
	"qserve/tools/qvet/internal/checks/lockguard"
	"qserve/tools/qvet/internal/checks/noalloc"
	"qserve/tools/qvet/internal/checks/phasecheck"
	"qserve/tools/qvet/internal/checks/stealcheck"
	"qserve/tools/qvet/internal/checks/wirecheck"
	"qserve/tools/qvet/internal/core"
)

// All returns every analyzer in suite order.
func All() []*core.Analyzer {
	return []*core.Analyzer{
		annotcheck.Analyzer,
		lockguard.Analyzer,
		atomicfield.Analyzer,
		phasecheck.Analyzer,
		noalloc.Analyzer,
		globalstate.Analyzer,
		detcore.Analyzer,
		wirecheck.Analyzer,
		stealcheck.Analyzer,
	}
}

// ValidChecks is the closed set of names //qvet:allow may reference.
// The annot meta-check is excluded on purpose: allow must not be able
// to suppress annotation-rot reports. "maporder" is a pseudo-check:
// it never reports on its own; detcore consults it on map-range
// findings so the waiver vocabulary names the hazard, not the tool.
func ValidChecks() map[string]bool {
	m := map[string]bool{"maporder": true}
	for _, a := range All() {
		if a.Name == "annot" {
			continue
		}
		m[a.Name] = true
	}
	return m
}
