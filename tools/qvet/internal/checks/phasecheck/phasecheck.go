// Package phasecheck enforces the barrier-phase discipline of the
// paper's frame pipeline (§3.2): a function annotated
// //qvet:phase=reply|physics|exec must never reach — through any chain
// of unannotated helpers — a function annotated with a different phase,
// because the barriers that make each phase's memory access pattern safe
// only hold within a phase. Additionally, reply-phase code is read-only
// over world structure: it must not reach any entity.Table mutator
// (Alloc/Free and their internal helpers), since every worker reads the
// frozen table concurrently during the reply phase.
//
// Mutators are computed structurally, not by name: a method of
// entity.Table is a mutator if its body writes through the receiver
// (directly or by calling another mutator method), so new Table methods
// are classified automatically.
//
// Soundness gap (documented): the closure runs over the static call
// graph, so calls through interfaces and function values are invisible.
package phasecheck

import (
	"go/ast"
	"go/types"

	"qserve/tools/qvet/internal/core"
)

// Analyzer is the phasecheck check.
var Analyzer = &core.Analyzer{
	Name:       "phasecheck",
	Doc:        "phase-annotated functions only reach compatible phases; reply phase never reaches entity.Table mutators",
	RunProgram: runProgram,
}

func runProgram(prog *core.Program, report core.Reporter) error {
	g := prog.EnsureGraph()
	mutators := tableMutators(prog, g)

	for _, fi := range g.Funcs {
		if fi.Annot == nil || fi.Annot.Phase == "" {
			continue
		}
		checkRoot(g, fi, mutators, report)
	}
	return nil
}

// checkRoot walks the call closure from one phase-annotated root through
// unannotated functions, stopping at annotated ones (each annotated
// function is its own root, so its subtree is covered by its own check).
type pathEntry struct {
	fi  *core.FuncInfo
	via *core.Call
}

func checkRoot(g *core.Graph, root *core.FuncInfo, mutators map[string]bool, report core.Reporter) {
	visited := map[string]bool{root.Key: true}
	var walk func(fi *core.FuncInfo, path []pathEntry)
	walk = func(fi *core.FuncInfo, path []pathEntry) {
		for i := range fi.Calls {
			call := &fi.Calls[i]
			callee := g.Funcs[call.CalleeKey]
			if callee == nil {
				continue // stdlib, interface method, or bodyless: no edge
			}
			if mutators[callee.Key] && root.Annot.Phase == core.PhaseReply {
				report(call.Pos, "reply-phase function %s reaches entity.Table mutator %s%s; the reply phase must be read-only over the entity table", root.Name, callee.Name, chainString(path))
				continue // one report per mutator chain; don't re-report its internals
			}
			if callee.Annot != nil && callee.Annot.Phase != "" {
				if callee.Annot.Phase != root.Annot.Phase {
					report(call.Pos, "//qvet:phase=%s function %s reaches //qvet:phase=%s function %s%s; cross-phase calls violate the barrier discipline", root.Annot.Phase, root.Name, callee.Annot.Phase, callee.Name, chainString(path))
				}
				continue // annotated callee is its own root
			}
			if visited[callee.Key] {
				continue
			}
			visited[callee.Key] = true
			walk(callee, append(path, pathEntry{fi: callee, via: call}))
		}
	}
	walk(root, nil)
}

func chainString(path []pathEntry) string {
	if len(path) == 0 {
		return ""
	}
	s := " via "
	for i, e := range path {
		if i > 0 {
			s += " -> "
		}
		s += e.fi.Name
	}
	return s
}

// tableMutators finds the entity package's Table type and classifies its
// methods: a method is a mutator when it assigns through the receiver or
// calls another mutator method on the receiver, computed to fixpoint.
func tableMutators(prog *core.Program, g *core.Graph) map[string]bool {
	var entPkg *core.Package
	for _, pkg := range prog.Packages {
		if pkg.Name == "entity" {
			entPkg = pkg
			break
		}
	}
	if entPkg == nil {
		return nil
	}

	// Gather Table methods declared in the entity package.
	type method struct {
		fi   *core.FuncInfo
		recv *types.Var // receiver object, for write detection
	}
	var methods []method
	byKey := make(map[string]*method)
	for _, fi := range g.Funcs {
		if fi.Pkg != entPkg || fi.Decl.Recv == nil || len(fi.Decl.Recv.List) == 0 {
			continue
		}
		recvField := fi.Decl.Recv.List[0]
		tv, ok := fi.Pkg.Info.Types[recvField.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "Table" {
			continue
		}
		var recvObj *types.Var
		if len(recvField.Names) > 0 {
			recvObj, _ = fi.Pkg.Info.Defs[recvField.Names[0]].(*types.Var)
		}
		methods = append(methods, method{fi: fi, recv: recvObj})
		byKey[fi.Key] = &methods[len(methods)-1]
	}

	mutators := make(map[string]bool)
	for _, m := range methods {
		if m.recv != nil && writesThrough(m.fi, m.recv) {
			mutators[m.fi.Key] = true
		}
	}
	// Transitive: a Table method calling a mutator Table method mutates.
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			if mutators[m.fi.Key] {
				continue
			}
			for _, call := range m.fi.Calls {
				if mutators[call.CalleeKey] {
					mutators[m.fi.Key] = true
					changed = true
					break
				}
			}
		}
	}
	return mutators
}

// writesThrough reports whether the method body assigns to storage
// rooted at the receiver (t.f = x, t.f[i] = x, t.f++, ...). Reads that
// return interior pointers (Get) do not count: the reply rule targets
// table-structure mutation, and entity-field writes are the exec phase's
// separately-guarded business.
func writesThrough(fi *core.FuncInfo, recv *types.Var) bool {
	info := fi.Pkg.Info
	rootedAtRecv := func(e ast.Expr) bool {
		for {
			switch x := e.(type) {
			case *ast.Ident:
				return info.Uses[x] == recv
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				return false
			}
		}
	}
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rootedAtRecv(lhs) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if rootedAtRecv(n.X) {
				found = true
			}
		}
		return true
	})
	return found
}
