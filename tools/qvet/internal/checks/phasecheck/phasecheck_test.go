package phasecheck_test

import (
	"testing"

	"qserve/tools/qvet/internal/analysistest"
	"qserve/tools/qvet/internal/checks/phasecheck"
	"qserve/tools/qvet/internal/core"
)

func TestPhasecheck(t *testing.T) {
	analysistest.Run(t, "testdata/phasefix", []*core.Analyzer{phasecheck.Analyzer})
}
