module phasefix

go 1.22
