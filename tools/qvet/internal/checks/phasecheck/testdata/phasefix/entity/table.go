// Package entity is a fixture stub of the engine's entity table:
// phasecheck classifies Table methods as mutators structurally (writes
// through the receiver, directly or transitively), so the stub only
// needs representative shapes, not the real implementation.
package entity

// Entity is a minimal entity record.
type Entity struct {
	ID     int
	Active bool
}

// Table mirrors qserve/internal/entity.Table's mutator/reader split.
type Table struct {
	ents   []Entity
	active []int
	n      int
}

// Alloc mutates directly (writes receiver fields).
func (t *Table) Alloc() int {
	t.n++
	t.insertActive(t.n)
	return t.n
}

// Free mutates transitively (calls removeActive).
func (t *Table) Free(id int) {
	t.removeActive(id)
}

func (t *Table) insertActive(id int) { t.active = append(t.active, id) }

func (t *Table) removeActive(id int) {
	for i, a := range t.active {
		if a == id {
			t.active[i] = t.active[len(t.active)-1]
			t.active = t.active[:len(t.active)-1]
			return
		}
	}
}

// Get is a reader: returning an interior pointer is not table-structure
// mutation.
func (t *Table) Get(id int) *Entity {
	for i := range t.ents {
		if t.ents[i].ID == id {
			return &t.ents[i]
		}
	}
	return nil
}

// ActiveIDs is a reader.
func (t *Table) ActiveIDs() []int { return t.active }

// CountActive is a reader that calls another reader.
func (t *Table) CountActive() int { return len(t.ActiveIDs()) }
