// Package a seeds phase-discipline violations: cross-phase call chains
// and reply-phase code reaching entity.Table mutators through helpers.
package a

import "phasefix/entity"

var tab entity.Table

// --- seeded violations -------------------------------------------------

// evict hides the mutation one call deep; the closure walks through it.
func evict(id int) {
	tab.Free(id) // want "reaches entity.Table mutator .*Free via evict"
}

// SendReplies is reply-phase and must be read-only over the table.
//
//qvet:phase=reply
func SendReplies() {
	for _, id := range tab.ActiveIDs() {
		if id < 0 {
			evict(id)
		}
	}
}

// DirectMutation violates without any intermediate helper.
//
//qvet:phase=reply
func DirectMutation() {
	tab.Alloc() // want "reaches entity.Table mutator .*Alloc"
}

// RunPhysics reaching an exec-phase function crosses the barrier. The
// report lands on the edge into the annotated callee, inside step.
//
//qvet:phase=physics
func RunPhysics() {
	step()
}

func step() {
	ExecMove() // want "physics function RunPhysics reaches //qvet:phase=exec function ExecMove via step"
}

// ExecMove is exec-phase.
//
//qvet:phase=exec
func ExecMove() {
	e := tab.Get(1)
	if e != nil {
		e.Active = true
	}
}

// --- correct patterns: must stay silent --------------------------------

// FormSnapshot is reply-phase calling reply-phase: compatible.
//
//qvet:phase=reply
func FormSnapshot() {
	AppendVisible()
}

// AppendVisible only reads.
//
//qvet:phase=reply
func AppendVisible() {
	_ = tab.CountActive()
	_ = tab.Get(2)
}

// Unannotated helpers may mutate freely; the rule binds annotated roots
// only (safeSendReplies' recovery path relies on this).
func Cleanup() {
	tab.Free(9)
}

// ExecAlloc: exec-phase code may mutate the table (it holds region
// locks); only the reply phase is read-only.
//
//qvet:phase=exec
func ExecAlloc() {
	tab.Alloc()
}
