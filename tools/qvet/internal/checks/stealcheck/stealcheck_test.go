package stealcheck_test

import (
	"testing"

	"qserve/tools/qvet/internal/analysistest"
	"qserve/tools/qvet/internal/checks/stealcheck"
	"qserve/tools/qvet/internal/core"
)

func TestStealcheck(t *testing.T) {
	analysistest.Run(t, "testdata/stealfix", []*core.Analyzer{stealcheck.Analyzer})
}
