module stealfix

go 1.22
