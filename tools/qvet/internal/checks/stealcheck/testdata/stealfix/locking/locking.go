// Package locking is a miniature stub of the engine's region-locking
// package: stealcheck (like lockguard) matches the Guard type by
// package *name*, so fixtures carry their own.
package locking

// Region is a lockable leaf region.
type Region struct{ held bool }

// Guard is a held region.
type Guard struct{ r *Region }

// Acquire locks the region.
func (r *Region) Acquire() Guard { r.held = true; return Guard{r} }

// TryAcquire locks the region if free.
func (r *Region) TryAcquire() (Guard, bool) {
	if r.held {
		return Guard{}, false
	}
	r.held = true
	return Guard{r}, true
}

// Release unlocks the region.
func (g Guard) Release() {
	if g.r != nil {
		g.r.held = false
	}
}
