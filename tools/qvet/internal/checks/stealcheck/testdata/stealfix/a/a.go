// Package a seeds stealing-protocol hint violations: acquiring before
// the publish, exits that strand a published mask, and publishes with
// no panic cover.
package a

import (
	"sync/atomic"

	"stealfix/locking"
)

type worker struct {
	activeHint atomic.Uint64
}

// --- seeded violations -------------------------------------------------

// AcquireFirst locks the region before other workers can see the mask.
//
//qvet:phase=exec
func AcquireFirst(w *worker, r *locking.Region) {
	g := r.Acquire() // want "may acquire a region before publishing activeHint"
	w.activeHint.Store(3) // want "not panic-covered"
	g.Release()
	w.activeHint.Store(0)
}

// LeakyPark parks an entry without clearing the published mask.
//
//qvet:phase=exec
func LeakyPark(w *worker, r *locking.Region) bool {
	w.activeHint.Store(5) // want "not panic-covered"
	if ok := tryExec(r); !ok {
		return true // want "exit path leaves activeHint published in LeakyPark"
	}
	w.activeHint.Store(0)
	return false
}

// Uncovered is clean on the happy path but a panic inside the guarded
// section would strand the mask: no defer here, no caller cover.
//
//qvet:phase=exec
func Uncovered(w *worker, r *locking.Region) {
	w.activeHint.Store(9) // want "activeHint publish in Uncovered is not panic-covered"
	g := r.Acquire()
	g.Release()
	w.activeHint.Store(0)
}

// tryExec acquires one helper deep: the transitive-acquirer closure
// must classify the call in LeakyPark as may-acquire (no report there —
// it happens after the publish — but it proves the closure works in
// AcquireIndirect below).
func tryExec(r *locking.Region) bool {
	g, ok := r.TryAcquire()
	if !ok {
		return false
	}
	g.Release()
	return true
}

// AcquireIndirect reaches TryAcquire through the helper before
// publishing.
//
//qvet:phase=exec
func AcquireIndirect(w *worker, r *locking.Region) {
	defer w.activeHint.Store(0)
	if !tryExec(r) { // want "may acquire a region before publishing activeHint"
		return
	}
	w.activeHint.Store(6)
}

// --- correct patterns: must stay silent --------------------------------

// SafeRun mirrors the live safeExecPoolEntry/execPoolEntry split: the
// wrapper arms the panic cover, the entry publishes and clears inline.
//
//qvet:phase=exec
func SafeRun(w *worker, r *locking.Region) bool {
	defer w.activeHint.Store(0)
	return run(w, r)
}

// run is the unannotated entry reached from the exec phase.
func run(w *worker, r *locking.Region) bool {
	w.activeHint.Store(maskOf(r))
	g, ok := r.TryAcquire()
	if !ok {
		w.activeHint.Store(0)
		return false
	}
	g.Release()
	w.activeHint.Store(0)
	return true
}

// SelfCovered publishes under its own deferred clear.
//
//qvet:phase=exec
func SelfCovered(w *worker, r *locking.Region) {
	defer w.activeHint.Store(0)
	w.activeHint.Store(7)
	g := r.Acquire()
	g.Release()
}

// InlineExec never publishes: inline (non-pooled) execution has no hint
// discipline, so stealcheck stays quiet.
//
//qvet:phase=exec
func InlineExec(r *locking.Region) {
	g := r.Acquire()
	g.Release()
}

func maskOf(r *locking.Region) uint64 {
	if r == nil {
		return 0
	}
	return 1
}
