// Package stealcheck verifies the conflict-aware stealing protocol's
// hint discipline (DESIGN.md §10). Pool scans avoid conflicting steals
// by consulting the leaf-region masks other workers publish in
// worker.activeHint while they execute a pooled request; the protocol
// is only sound if every publisher
//
//  1. publishes before the first region acquisition it performs (an
//     unpublished execution is invisible to activeRegionHints, so a
//     thief can claim a conflicting entry and park on the guard wall
//     the scheduler exists to avoid);
//  2. clears the hint (activeHint.Store(0)) on every exit path — a
//     stale nonzero mask makes every healthy worker defer against an
//     execution that no longer exists;
//  3. is panic-covered: either the publisher itself arms
//     `defer activeHint.Store(0)`, or every exec-phase caller arms one
//     before the call (the safeExecPoolEntry / execPoolEntry split in
//     the live tree), so an unwinding request cannot strand the mask.
//
// The analysis is the same shape as lockguard's all-paths-release: an
// abstract interpretation of each publishing function in the exec-phase
// closure (functions annotated //qvet:phase=exec plus everything they
// statically reach), tracking published/unpublished through branches
// and loops. "May acquire" means a call whose result is a locking.Guard
// or a call to a function whose own closure acquires one.
//
// client.leafHint is deliberately out of scope: it is a monotonic cache
// of the last committed move's mask, read as a scan seed — staleness is
// tolerated by design, so it has no clear-on-exit discipline.
//
// Soundness gap (documented): acquisitions behind interfaces, function
// values (cfg.Hooks), and reflection are invisible, and a function that
// acquires without publishing at all is only caught when it is itself a
// publisher — the interprocedural publish context of plain helpers is
// not tracked.
package stealcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"qserve/tools/qvet/internal/core"
)

// Analyzer is the stealcheck check.
var Analyzer = &core.Analyzer{
	Name:       "stealcheck",
	Doc:        "activeHint published before first region acquire, cleared on every exit path including panic",
	RunProgram: runProgram,
}

func runProgram(prog *core.Program, report core.Reporter) error {
	g := prog.EnsureGraph()
	scope := execClosure(g)
	acquirers := acquirerClosure(g)

	var keys []string
	for k := range scope {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, k := range keys {
		fi := scope[k]
		c := &checker{prog: prog, g: g, fi: fi, scope: scope, acquirers: acquirers, report: report}
		c.check()
	}
	return nil
}

// execClosure is every function statically reachable from a
// //qvet:phase=exec annotation.
func execClosure(g *core.Graph) map[string]*core.FuncInfo {
	scope := make(map[string]*core.FuncInfo)
	var queue []*core.FuncInfo
	for _, fi := range g.Funcs {
		if fi.Annot != nil && fi.Annot.Phase == core.PhaseExec {
			scope[fi.Key] = fi
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, call := range fi.Calls {
			callee := g.Funcs[call.CalleeKey]
			if callee == nil || scope[callee.Key] != nil {
				continue
			}
			scope[callee.Key] = callee
			queue = append(queue, callee)
		}
	}
	return scope
}

// acquirerClosure marks every function whose body (transitively) makes
// a call producing a locking.Guard.
func acquirerClosure(g *core.Graph) map[string]bool {
	acq := make(map[string]bool)
	for _, fi := range g.Funcs {
		info := fi.Pkg.Info
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && producesGuard(info, call) {
				acq[fi.Key] = true
				return false
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range g.Funcs {
			if acq[fi.Key] {
				continue
			}
			for _, call := range fi.Calls {
				if acq[call.CalleeKey] {
					acq[fi.Key] = true
					changed = true
					break
				}
			}
		}
	}
	return acq
}

// producesGuard reports whether the call's result (or any element of a
// tuple result, covering TryAcquire's (Guard, bool)) is a locking.Guard.
func producesGuard(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isGuardType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isGuardType(tv.Type)
}

// isGuardType matches the named type Guard from a package named
// "locking" — by package name, not import path, so the analysistest
// fixtures can stub their own mini locking package (same trick as
// lockguard).
func isGuardType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Guard" && obj.Pkg() != nil && obj.Pkg().Name() == "locking"
}

// state is the abstract hint state at a program point. Both bits can be
// set after a branch merge.
type state struct {
	mayPub     bool // some path reaches here with the hint published
	mayUnpub   bool // some path reaches here with the hint clear
	deferClear bool // a deferred clear is armed on every path to here
}

type checker struct {
	prog      *core.Program
	g         *core.Graph
	fi        *core.FuncInfo
	scope     map[string]*core.FuncInfo
	acquirers map[string]bool
	report    core.Reporter

	publishes []token.Pos
	ownDefer  bool
}

func (c *checker) check() {
	if !c.isPublisher() {
		return
	}
	st := &state{mayUnpub: true}
	c.stmts(c.fi.Decl.Body.List, st)
	c.exit(st, c.fi.Decl.Body.End())
	c.panicCover()
}

// isPublisher pre-scans the body for a non-literal-zero activeHint
// store outside defer statements.
func (c *checker) isPublisher() bool {
	found := false
	ast.Inspect(c.fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if hintStore(n) && !zeroArg(n) {
				found = true
			}
		}
		return true
	})
	return found
}

// hintStore matches <expr>.activeHint.Store(arg).
func hintStore(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" {
		return false
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	return ok && field.Sel.Name == "activeHint"
}

func zeroArg(call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

func (c *checker) stmts(list []ast.Stmt, st *state) {
	for _, s := range list {
		c.stmt(s, st)
	}
}

func (c *checker) stmt(s ast.Stmt, st *state) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		if c.deferClears(s) {
			st.deferClear = true
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, st)
		}
		c.exit(st, s.Pos())
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.expr(s.Cond, st)
		then := *st
		c.stmts(s.Body.List, &then)
		alt := *st
		if s.Else != nil {
			c.stmt(s.Else, &alt)
		}
		merge(st, &then, &alt)
	case *ast.BlockStmt:
		c.stmts(s.List, st)
	case *ast.ForStmt:
		c.loop(s.Init, s.Cond, s.Post, s.Body, st)
	case *ast.RangeStmt:
		c.expr(s.X, st)
		c.loop(nil, nil, nil, s.Body, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.expr(s.Tag, st)
		}
		c.cases(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.cases(s.Body, st)
	case *ast.SelectStmt:
		c.cases(s.Body, st)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, st)
	default:
		// Assignments, expression statements, sends, go, inc/dec:
		// process the calls they contain in lexical order.
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				c.call(n, st)
			}
			return true
		})
	}
}

func (c *checker) expr(e ast.Expr, st *state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.call(n, st)
		}
		return true
	})
}

// loop interprets a loop body twice over the same state (so a publish in
// iteration one meets iteration two's statements) and then restores the
// zero-iteration possibility by union with the pre-loop state.
func (c *checker) loop(init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt, st *state) {
	if init != nil {
		c.stmt(init, st)
	}
	pre := *st
	for i := 0; i < 2; i++ {
		c.expr(cond, st)
		c.stmts(body.List, st)
		if post != nil {
			c.stmt(post, st)
		}
	}
	merge(st, st, &pre)
}

func (c *checker) cases(body *ast.BlockStmt, st *state) {
	pre := *st
	out := *st // zero matching cases is impossible, but default may be absent
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		branch := pre
		c.stmts(stmts, &branch)
		merge(&out, &out, &branch)
	}
	*st = out
}

func merge(dst, a, b *state) {
	*dst = state{
		mayPub:     a.mayPub || b.mayPub,
		mayUnpub:   a.mayUnpub || b.mayUnpub,
		deferClear: a.deferClear && b.deferClear,
	}
}

// call applies one call's effect to the state: clear, publish, or a
// possible region acquisition while unpublished (rule 1).
func (c *checker) call(call *ast.CallExpr, st *state) {
	if hintStore(call) {
		if zeroArg(call) {
			st.mayPub = false
			st.mayUnpub = true
		} else {
			st.mayPub = true
			st.mayUnpub = false
			c.publishes = append(c.publishes, call.Pos())
		}
		return
	}
	if st.mayUnpub && c.mayAcquire(call) {
		c.report(call.Pos(), "exec-phase function %s may acquire a region before publishing activeHint; pool scans cannot see the held leaves, so a conflicting steal blocks instead of deferring", c.fi.Name)
	}
}

func (c *checker) mayAcquire(call *ast.CallExpr) bool {
	if producesGuard(c.fi.Pkg.Info, call) {
		return true
	}
	callee := core.CalleeOf(c.fi.Pkg.Info, call)
	return callee != nil && c.acquirers[core.FuncKey(callee)]
}

// exit fires rule 2 at a return point reached with the hint possibly
// still published and no deferred clear armed.
func (c *checker) exit(st *state, pos token.Pos) {
	if st.mayPub && !st.deferClear {
		c.report(pos, "exit path leaves activeHint published in %s; clear it (activeHint.Store(0)) on every return or a stale mask makes other workers defer forever", c.fi.Name)
	}
}

// deferClears matches `defer x.activeHint.Store(0)` and
// `defer func() { ...; x.activeHint.Store(0); ... }()`.
func (c *checker) deferClears(d *ast.DeferStmt) bool {
	if hintStore(d.Call) && zeroArg(d.Call) {
		c.ownDefer = true
		return true
	}
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && hintStore(call) && zeroArg(call) {
				found = true
			}
			return true
		})
		if found {
			c.ownDefer = true
		}
		return found
	}
	return false
}

// panicCover fires rule 3: a publisher with no deferred clear of its own
// must have every in-scope call site lexically preceded by a caller-side
// deferred clear, so a panicking request cannot strand the mask.
func (c *checker) panicCover() {
	if c.ownDefer || len(c.publishes) == 0 {
		return
	}
	covered := false
	uncoveredCallers := 0
	for _, caller := range c.scope {
		for _, call := range caller.Calls {
			if call.CalleeKey != c.fi.Key {
				continue
			}
			if callerDeferBefore(caller, call.Pos) {
				covered = true
			} else {
				uncoveredCallers++
				c.report(call.Pos, "call into activeHint publisher %s is not panic-covered; arm defer activeHint.Store(0) before this call (or inside %s itself)", c.fi.Name, c.fi.Name)
			}
		}
	}
	if !covered && uncoveredCallers == 0 {
		c.report(c.publishes[0], "activeHint publish in %s is not panic-covered; arm defer activeHint.Store(0) here or in every exec-phase caller", c.fi.Name)
	}
}

// callerDeferBefore reports whether caller arms a deferred hint clear
// lexically before pos.
func callerDeferBefore(caller *core.FuncInfo, pos token.Pos) bool {
	found := false
	ast.Inspect(caller.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok || d.Pos() >= pos {
			return true
		}
		if hintStore(d.Call) && zeroArg(d.Call) {
			found = true
			return false
		}
		if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && hintStore(call) && zeroArg(call) {
					found = true
				}
				return true
			})
		}
		return true
	})
	return found
}
