package wirecheck_test

import (
	"testing"

	"qserve/tools/qvet/internal/analysistest"
	"qserve/tools/qvet/internal/checks/wirecheck"
	"qserve/tools/qvet/internal/core"
)

func TestWirecheck(t *testing.T) {
	analysistest.Run(t, "testdata/wirefix", []*core.Analyzer{wirecheck.Analyzer})
}
