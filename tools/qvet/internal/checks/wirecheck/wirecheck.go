// Package wirecheck proves schema coverage for the hand-rolled binary
// formats (protocol wire v3, QRPL replay logs, QCKP checkpoints). Each
// format is declared by annotations:
//
//	//qvet:wire=<format>          on every struct in the format's schema
//	//qvet:wire=<format> encode   on the encoder entry point(s)
//	//qvet:wire=<format> decode   on the decoder entry point(s)
//	//qvet:wire=<format> version  on the format's version constant
//
// For every annotated struct the analyzer computes the set of fields
// *read* anywhere in the encoder's static call closure and the set of
// fields *written* anywhere in the decoder's closure (assignment
// left-hand sides, ++/--, &x.F address-taking, and composite-literal
// construction all count as writes). A field missing from either set
// fails the build: adding a field to an annotated struct forces both
// sides — and a version bump, which the paired findings make impossible
// to forget — before the tree compiles green. This is the bug class
// fuzzing cannot reach: silent truncation where both sides agree on the
// same wrong schema.
//
// A field that is deliberately absent from the wire image (derived,
// caches, carried elsewhere) takes //qvet:allow=wirecheck on its
// declaration line with a reason.
//
// Soundness gap (documented): field accesses behind interfaces,
// function values, or reflection are invisible to the closure, and a
// read in the encode closure counts even if it is dead code.
package wirecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"qserve/tools/qvet/internal/core"
)

// Analyzer is the wirecheck check.
var Analyzer = &core.Analyzer{
	Name:       "wirecheck",
	Doc:        "encoder-read and decoder-written field sets cover every //qvet:wire struct, per format",
	RunProgram: runProgram,
}

// schemaType is one annotated struct in one format's schema.
type schemaType struct {
	key    string // pkgPath.TypeName
	name   string // human-readable, e.g. protocol.MoveCmd
	fields []schemaField
}

type schemaField struct {
	name string
	pos  token.Pos
}

// format aggregates everything declared for one //qvet:wire format.
type format struct {
	name     string
	anchor   token.Pos // first annotation seen, for format-level reports
	types    []*schemaType
	byKey    map[string]*schemaType
	encoders []*core.FuncInfo
	decoders []*core.FuncInfo
	versions []core.WireVersionDecl
}

func runProgram(prog *core.Program, report core.Reporter) error {
	g := prog.EnsureGraph()
	formats := collect(prog, g)

	names := make([]string, 0, len(formats))
	for n := range formats {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, n := range names {
		f := formats[n]
		if !complete(f, report) {
			continue // field-level results would be all-noise
		}
		reads := fieldAccesses(g, f, f.encoders, encodeReads)
		writes := fieldAccesses(g, f, f.decoders, decodeWrites)
		for _, st := range f.types {
			for _, fld := range st.fields {
				if !reads[st.key][fld.name] {
					report(fld.pos, "field %s.%s is not read by any %s encoder; encode it (and bump the format version) or annotate //qvet:allow=wirecheck with a reason", st.name, fld.name, f.name)
				}
				if !writes[st.key][fld.name] {
					report(fld.pos, "field %s.%s is not written by any %s decoder; decode it (and bump the format version) or annotate //qvet:allow=wirecheck with a reason", st.name, fld.name, f.name)
				}
			}
		}
	}
	return nil
}

// collect groups all //qvet:wire annotations in the program by format.
func collect(prog *core.Program, g *core.Graph) map[string]*format {
	formats := make(map[string]*format)
	get := func(name string, pos token.Pos) *format {
		f := formats[name]
		if f == nil {
			f = &format{name: name, anchor: pos, byKey: make(map[string]*schemaType)}
			formats[name] = f
		}
		if pos < f.anchor {
			f.anchor = pos // earliest annotation anchors format-level reports
		}
		return f
	}

	// Annotated struct types, resolved per package so field positions
	// come from the defining AST.
	for _, pkg := range prog.Packages {
		for ts, annots := range prog.Annots.WireTypes {
			obj, ok := pkg.Info.Defs[ts.Name]
			if !ok || obj == nil {
				continue
			}
			st := &schemaType{
				key:  obj.Pkg().Path() + "." + obj.Name(),
				name: obj.Pkg().Name() + "." + obj.Name(),
			}
			structAST := ts.Type.(*ast.StructType)
			for _, fl := range structAST.Fields.List {
				if len(fl.Names) == 0 {
					// Embedded field: tracked under its type name, the
					// same identifier selector expressions use.
					if id := embeddedName(fl.Type); id != nil {
						st.fields = append(st.fields, schemaField{name: id.Name, pos: id.Pos()})
					}
					continue
				}
				for _, name := range fl.Names {
					st.fields = append(st.fields, schemaField{name: name.Name, pos: name.Pos()})
				}
			}
			for _, wa := range annots {
				f := get(wa.Format, wa.Pos)
				if f.byKey[st.key] == nil {
					f.byKey[st.key] = st
					f.types = append(f.types, st)
				}
			}
		}
	}
	for _, f := range formats {
		sort.Slice(f.types, func(i, j int) bool { return f.types[i].key < f.types[j].key })
	}

	// Encoder/decoder roots.
	var keys []string
	for k := range g.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fi := g.Funcs[k]
		if fi.Annot == nil {
			continue
		}
		for _, wa := range fi.Annot.Wire {
			f := get(wa.Format, wa.Pos)
			switch wa.Role {
			case core.WireEncode:
				f.encoders = append(f.encoders, fi)
			case core.WireDecode:
				f.decoders = append(f.decoders, fi)
			}
		}
	}

	// Version constants.
	for name, decls := range prog.Annots.WireVersions {
		f := get(name, decls[0].Pos)
		f.versions = decls
	}
	return formats
}

func embeddedName(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// complete checks the format-level requirements: at least one encoder,
// decoder, version const, and schema struct.
func complete(f *format, report core.Reporter) bool {
	ok := true
	if len(f.encoders) == 0 {
		report(f.anchor, "wire format %q has no //qvet:wire=%s encode function", f.name, f.name)
		ok = false
	}
	if len(f.decoders) == 0 {
		report(f.anchor, "wire format %q has no //qvet:wire=%s decode function", f.name, f.name)
		ok = false
	}
	if len(f.versions) == 0 {
		report(f.anchor, "wire format %q has no //qvet:wire=%s version constant", f.name, f.name)
		ok = false
	}
	if len(f.types) == 0 {
		report(f.anchor, "wire format %q has no //qvet:wire=%s schema structs", f.name, f.name)
		ok = false
	}
	return ok
}

// accessFn records field accesses found in one function body into acc.
type accessFn func(fi *core.FuncInfo, f *format, acc map[string]map[string]bool)

// fieldAccesses runs fn over the static call closure of the given roots
// and returns typeKey -> fieldName -> true.
func fieldAccesses(g *core.Graph, f *format, roots []*core.FuncInfo, fn accessFn) map[string]map[string]bool {
	acc := make(map[string]map[string]bool)
	visited := make(map[string]bool)
	var queue []*core.FuncInfo
	for _, r := range roots {
		if !visited[r.Key] {
			visited[r.Key] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		fn(fi, f, acc)
		for _, call := range fi.Calls {
			callee := g.Funcs[call.CalleeKey]
			if callee == nil || visited[callee.Key] {
				continue
			}
			visited[callee.Key] = true
			queue = append(queue, callee)
		}
	}
	return acc
}

// schemaKeyOf resolves an expression's type to a schema key of f, or "".
func schemaKeyOf(f *format, t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if f.byKey[key] == nil {
		return ""
	}
	return key
}

func mark(acc map[string]map[string]bool, key, field string) {
	if acc[key] == nil {
		acc[key] = make(map[string]bool)
	}
	acc[key][field] = true
}

// encodeReads marks every field selection on a schema struct as read.
// types.Selections resolves promoted fields through embedding.
func encodeReads(fi *core.FuncInfo, f *format, acc map[string]map[string]bool) {
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if key := schemaKeyOf(f, s.Recv()); key != "" {
			mark(acc, key, sel.Sel.Name)
		}
		return true
	})
}

// decodeWrites marks fields written by the decode closure: assignment
// LHS chains (every schema field along the chain counts — writing
// d.State.ID also proves d.State was handled), ++/--, address-taking
// (&m.You handed to a fill helper), and composite-literal construction.
func decodeWrites(fi *core.FuncInfo, f *format, acc map[string]map[string]bool) {
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markChain(info, f, acc, lhs)
			}
		case *ast.IncDecStmt:
			markChain(info, f, acc, n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markChain(info, f, acc, n.X)
			}
		case *ast.CompositeLit:
			markComposite(info, f, acc, n)
		}
		return true
	})
}

// markChain walks a selector chain (d.State.ID, m.Ammo[i], *p.Base)
// marking every schema field it passes through.
func markChain(info *types.Info, f *format, acc map[string]map[string]bool, e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
				if key := schemaKeyOf(f, s.Recv()); key != "" {
					mark(acc, key, x.Sel.Name)
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return
		}
	}
}

// markComposite marks fields constructed by a schema-struct literal:
// keyed elements by name, positional literals as covering every field.
func markComposite(info *types.Info, f *format, acc map[string]map[string]bool, cl *ast.CompositeLit) {
	tv, ok := info.Types[cl]
	if !ok {
		return
	}
	key := schemaKeyOf(f, tv.Type)
	if key == "" {
		return
	}
	st := f.byKey[key]
	if len(cl.Elts) == 0 {
		return
	}
	if kv, ok := cl.Elts[0].(*ast.KeyValueExpr); ok {
		_ = kv
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					mark(acc, key, id.Name)
				}
			}
		}
		return
	}
	// Positional literal: the compiler already enforces every field.
	for _, fld := range st.fields {
		mark(acc, key, fld.name)
	}
}
