module wirefix

go 1.22
