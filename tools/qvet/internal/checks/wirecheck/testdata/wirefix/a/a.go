// Package a seeds wire-schema coverage violations for the "demo"
// format: a struct that grew a field the encoder handles but the
// decoder forgot, and one the encoder never learned about.
package a

import "encoding/binary"

// FormatVersion is demo's version constant.
//
//qvet:wire=demo version
const FormatVersion = 2

// Header is demo's frame header.
//
//qvet:wire=demo
type Header struct {
	Magic uint32
	Seq   uint32
	// Grew later: encoded below but never decoded — the seeded bug.
	Flags uint16 // want "field a.Header.Flags is not written by any demo decoder"
	// Never wired at all: both sides missing.
	Pad uint16 // want "field a.Header.Pad is not read by any demo encoder" "field a.Header.Pad is not written by any demo decoder"
	// Derived at runtime, deliberately off the wire.
	//qvet:allow=wirecheck recomputed from payload length on receipt
	Size int
}

// Body is fully covered through helpers on both sides: silent.
//
//qvet:wire=demo
type Body struct {
	ID   uint64
	Name string
}

// Encode is demo's encoder root.
//
//qvet:wire=demo encode
func Encode(h *Header, b *Body) []byte {
	var out []byte
	out = binary.BigEndian.AppendUint32(out, h.Magic)
	out = binary.BigEndian.AppendUint32(out, h.Seq)
	out = binary.BigEndian.AppendUint16(out, h.Flags)
	return appendBody(out, b)
}

// appendBody reads Body fields one helper deep in the encode closure.
func appendBody(out []byte, b *Body) []byte {
	out = binary.BigEndian.AppendUint64(out, b.ID)
	out = append(out, byte(len(b.Name)))
	return append(out, b.Name...)
}

// Decode is demo's decoder root. Header.Flags is missing on purpose.
//
//qvet:wire=demo decode
func Decode(buf []byte) (*Header, *Body) {
	h := &Header{
		Magic: binary.BigEndian.Uint32(buf),
		Seq:   binary.BigEndian.Uint32(buf[4:]),
	}
	h.Size = len(buf)
	var b Body
	readBody(buf[10:], &b)
	return h, &b
}

// readBody writes Body fields via an address-taken out-param, the
// fill-helper shape the real decoders use.
func readBody(buf []byte, b *Body) {
	b.ID = binary.BigEndian.Uint64(buf)
	n := int(buf[8])
	b.Name = string(buf[9 : 9+n])
}
