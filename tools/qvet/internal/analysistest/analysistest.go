// Package analysistest runs qvet analyzers over a fixture module and
// compares the diagnostics against // want "regexp" expectations in the
// fixture source — the stdlib-only equivalent of
// golang.org/x/tools/go/analysis/analysistest. A want comment matches
// any diagnostic reported on its line; multiple quoted regexps may
// follow one want.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"qserve/tools/qvet/internal/checks"
	"qserve/tools/qvet/internal/core"
	"qserve/tools/qvet/internal/load"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads the fixture module at dir, executes the analyzers, and
// reports every mismatch between produced diagnostics and want
// expectations as test errors.
func Run(t *testing.T, dir string, analyzers []*core.Analyzer) {
	t.Helper()
	prog, err := load.Load(dir, []string{"./..."}, checks.ValidChecks())
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, a := range analyzers {
		if a.NeedEscapes {
			esc, err := load.Escapes(dir, []string{"./..."})
			if err != nil {
				t.Fatalf("escape analysis for fixture %s: %v", dir, err)
			}
			prog.Escapes = esc
			break
		}
	}
	diags, err := core.RunAnalyzers(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, a := range analyzers {
		if a.Name == "annot" {
			diags = append(diags, prog.Annots.Problems...)
			break
		}
	}

	type key struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[key][]*want)
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], &want{re: re, raw: pat})
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", shorten(dir, d.Pos.Filename), d.Pos.Line, d.Check, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", shorten(dir, k.file), k.line, w.raw)
			}
		}
	}
}

func shorten(dir, file string) string {
	if rel, ok := strings.CutPrefix(file, dir); ok {
		return strings.TrimPrefix(rel, "/")
	}
	return file
}

// MustFind is a convenience for driver-level smoke tests: it fails
// unless output contains every needle.
func MustFind(t *testing.T, output string, needles ...string) {
	t.Helper()
	for _, n := range needles {
		if !strings.Contains(output, n) {
			t.Errorf("output missing %q; got:\n%s", n, output)
		}
	}
}
