// Package core is a minimal, dependency-free stand-in for the parts of
// golang.org/x/tools/go/analysis that qvet needs: analyzer registration,
// a per-package pass, diagnostics, and the shared program-wide facts
// (annotation index, call graph, escape-analysis index) the checks run
// against. qvet cannot depend on x/tools because the engine repo is
// deliberately stdlib-only, so the framework is rebuilt here on
// go/ast + go/types + the go command.
package core

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Package is one type-checked target package (test files excluded).
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the full loaded target set plus shared indexes. Escapes is
// populated only when an enabled analyzer declares NeedEscapes; Graph is
// built lazily by EnsureGraph.
type Program struct {
	Dir      string // absolute module root the program was loaded from
	Fset     *token.FileSet
	Packages []*Package
	Annots   *Index
	Escapes  *EscapeIndex
	Graph    *Graph
}

// Pass is the per-package view handed to an analyzer's Run.
type Pass struct {
	*Package
	Prog   *Program
	Check  string
	report func(Diagnostic)
}

// Reportf records a diagnostic unless a //qvet:allow=<check> comment
// covers its line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	if p.Prog.Annots.Allowed(p.Check, position) {
		return
	}
	p.report(Diagnostic{Pos: position, Check: p.Check, Message: fmt.Sprintf(format, args...)})
}

// Reporter is the sink handed to program-level analyzers. It applies the
// same //qvet:allow filtering as Pass.Reportf.
type Reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one named check. Exactly one of Run (per target package)
// or RunProgram (once, whole program) must be set.
type Analyzer struct {
	Name        string
	Doc         string
	NeedEscapes bool
	Run         func(*Pass) error
	RunProgram  func(*Program, Reporter) error
}

// RunAnalyzers executes the given analyzers over the program and returns
// the combined, position-sorted, deduplicated diagnostics.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	sink := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		switch {
		case a.RunProgram != nil:
			rep := func(pos token.Pos, format string, args ...any) {
				position := prog.Fset.Position(pos)
				if prog.Annots.Allowed(a.Name, position) {
					return
				}
				sink(Diagnostic{Pos: position, Check: a.Name, Message: fmt.Sprintf(format, args...)})
			}
			if err := a.RunProgram(prog, rep); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		case a.Run != nil:
			for _, pkg := range prog.Packages {
				pass := &Pass{Package: pkg, Prog: prog, Check: a.Name, report: sink}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	// Dedup identical findings (loop bodies are interpreted twice by
	// lockguard, which can replay a report).
	out := diags[:0]
	var last Diagnostic
	for i, d := range diags {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out, nil
}

// EscapeIndex maps absolute file path -> line -> the compiler's
// escape-analysis messages ("... escapes to heap" / "moved to heap: ...")
// for that line.
type EscapeIndex struct {
	ByFile map[string]map[int][]string
}

// At returns the escape messages recorded for file:line.
func (e *EscapeIndex) At(file string, line int) []string {
	if e == nil {
		return nil
	}
	return e.ByFile[file][line]
}
