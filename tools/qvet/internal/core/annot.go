package core

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Annotation grammar (see DESIGN.md §9):
//
//	//qvet:phase=reply|physics|exec   on a func declaration's doc comment
//	//qvet:noalloc                    on a func declaration's doc comment
//	//qvet:allow=<check> [reason]     anywhere; suppresses <check> findings
//	                                  on its own line and the next line
//
// Anything else spelled //qvet:... is recorded as a Problem and reported
// by the annot check, so a typo'd phase name or an annotation stranded on
// a declaration the suite does not understand fails CI instead of
// silently checking nothing.

// Phase is a frame-pipeline phase name.
type Phase string

const (
	PhaseReply   Phase = "reply"
	PhasePhysics Phase = "physics"
	PhaseExec    Phase = "exec"
)

// ValidPhases is the closed set of phase names.
var ValidPhases = map[Phase]bool{PhaseReply: true, PhasePhysics: true, PhaseExec: true}

// FuncAnnot is the directives attached to one function declaration.
type FuncAnnot struct {
	Phase    Phase // "" when not phase-annotated
	PhasePos token.Pos
	NoAlloc  bool
	NoAllocPos token.Pos
}

// Index is the program-wide annotation table.
type Index struct {
	ByFunc map[*ast.FuncDecl]*FuncAnnot
	// allows: file -> line -> set of check names suppressed on that line.
	allows map[string]map[int]map[string]bool
	// Problems are malformed or misattached directives, reported by the
	// annot check.
	Problems []Diagnostic
}

// FuncOf returns the annotations for decl, or nil.
func (ix *Index) FuncOf(decl *ast.FuncDecl) *FuncAnnot {
	if ix == nil {
		return nil
	}
	return ix.ByFunc[decl]
}

// Allowed reports whether findings of check at pos are suppressed by a
// //qvet:allow comment.
func (ix *Index) Allowed(check string, pos token.Position) bool {
	if ix == nil {
		return false
	}
	lines := ix.allows[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][check]
}

func (ix *Index) allow(file string, line int, check string) {
	if ix.allows[file] == nil {
		ix.allows[file] = make(map[int]map[string]bool)
	}
	for _, l := range []int{line, line + 1} {
		if ix.allows[file][l] == nil {
			ix.allows[file][l] = make(map[string]bool)
		}
		ix.allows[file][l][check] = true
	}
}

func (ix *Index) problem(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	ix.Problems = append(ix.Problems, Diagnostic{
		Pos:     fset.Position(pos),
		Check:   "annot",
		Message: fmt.Sprintf(format, args...),
	})
}

// BuildIndex scans every file of every target package for //qvet:
// directives. validChecks is the closed set of check names accepted in
// //qvet:allow.
func BuildIndex(fset *token.FileSet, pkgs []*Package, validChecks map[string]bool) *Index {
	ix := &Index{
		ByFunc: make(map[*ast.FuncDecl]*FuncAnnot),
		allows: make(map[string]map[int]map[string]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			docOwner := make(map[*ast.CommentGroup]*ast.FuncDecl)
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
					docOwner[fd.Doc] = fd
				}
			}
			for _, group := range file.Comments {
				owner := docOwner[group]
				for _, c := range group.List {
					if !strings.HasPrefix(c.Text, "//qvet:") {
						continue
					}
					ix.directive(fset, c, owner, validChecks)
				}
			}
		}
	}
	return ix
}

func (ix *Index) directive(fset *token.FileSet, c *ast.Comment, owner *ast.FuncDecl, validChecks map[string]bool) {
	body := strings.TrimPrefix(c.Text, "//qvet:")
	switch {
	case strings.HasPrefix(body, "allow="):
		rest := strings.TrimPrefix(body, "allow=")
		check := rest
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			check = rest[:i]
			if strings.TrimSpace(rest[i:]) == "" {
				ix.problem(fset, c.Pos(), "//qvet:allow=%s has an empty reason; drop the trailing space or state the reason", check)
			}
		}
		if !validChecks[check] {
			ix.problem(fset, c.Pos(), "//qvet:allow references unknown check %q (valid: lockguard, phasecheck, atomicfield, noalloc, globalstate)", check)
			return
		}
		ix.allow(fset.Position(c.Pos()).Filename, fset.Position(c.Pos()).Line, check)

	case strings.HasPrefix(body, "phase="):
		name := Phase(strings.TrimPrefix(body, "phase="))
		if !ValidPhases[name] {
			ix.problem(fset, c.Pos(), "//qvet:phase=%s names a nonexistent phase (valid: reply, physics, exec)", name)
			return
		}
		fa := ix.attach(fset, c, owner, "phase")
		if fa == nil {
			return
		}
		if fa.Phase != "" && fa.Phase != name {
			ix.problem(fset, c.Pos(), "conflicting phase annotations on %s: %s and %s", owner.Name.Name, fa.Phase, name)
			return
		}
		fa.Phase = name
		fa.PhasePos = c.Pos()

	case body == "noalloc":
		fa := ix.attach(fset, c, owner, "noalloc")
		if fa == nil {
			return
		}
		fa.NoAlloc = true
		fa.NoAllocPos = c.Pos()

	default:
		ix.problem(fset, c.Pos(), "unknown //qvet: directive %q (valid: phase=, noalloc, allow=)", body)
	}
}

// attach binds a phase/noalloc directive to its doc-comment owner,
// recording a Problem when the directive is stranded somewhere the suite
// does not understand (not a func declaration's doc comment, or a
// bodyless declaration the checks cannot analyze).
func (ix *Index) attach(fset *token.FileSet, c *ast.Comment, owner *ast.FuncDecl, kind string) *FuncAnnot {
	if owner == nil {
		ix.problem(fset, c.Pos(), "//qvet:%s directive is not attached to a function declaration's doc comment", kind)
		return nil
	}
	if owner.Body == nil {
		ix.problem(fset, c.Pos(), "//qvet:%s on %s: declaration has no body to analyze", kind, owner.Name.Name)
		return nil
	}
	fa := ix.ByFunc[owner]
	if fa == nil {
		fa = &FuncAnnot{}
		ix.ByFunc[owner] = fa
	}
	return fa
}
