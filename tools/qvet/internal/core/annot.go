package core

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Annotation grammar (see DESIGN.md §9):
//
//	//qvet:phase=reply|physics|exec   on a func declaration's doc comment
//	//qvet:noalloc                    on a func declaration's doc comment
//	//qvet:det                        on a func declaration's doc comment;
//	                                  marks a determinism root (detcore)
//	//qvet:wire=<format>              on a struct type declaration: the
//	                                  struct is part of <format>'s schema
//	//qvet:wire=<format> encode       on a func: an encoder for <format>
//	//qvet:wire=<format> decode       on a func: a decoder for <format>
//	//qvet:wire=<format> version      on a const: <format>'s version const
//	//qvet:allow=<check> [reason]     anywhere; suppresses <check> findings
//	                                  on its own line and the next line
//
// Anything else spelled //qvet:... is recorded as a Problem and reported
// by the annot check, so a typo'd phase name or an annotation stranded on
// a declaration the suite does not understand fails CI instead of
// silently checking nothing.

// Phase is a frame-pipeline phase name.
type Phase string

const (
	PhaseReply   Phase = "reply"
	PhasePhysics Phase = "physics"
	PhaseExec    Phase = "exec"
)

// ValidPhases is the closed set of phase names.
var ValidPhases = map[Phase]bool{PhaseReply: true, PhasePhysics: true, PhaseExec: true}

// FuncAnnot is the directives attached to one function declaration.
type FuncAnnot struct {
	Phase    Phase // "" when not phase-annotated
	PhasePos token.Pos
	NoAlloc  bool
	NoAllocPos token.Pos
	// Det marks a determinism root: the function's transitive static
	// call closure is checked by detcore.
	Det    bool
	DetPos token.Pos
	// Wire holds the function's encoder/decoder roles, one per format.
	Wire []WireAnnot
}

// WireRole distinguishes the sides of a //qvet:wire directive.
type WireRole string

// Wire directive roles. WireSchema is the empty role used on struct
// type declarations.
const (
	WireSchema  WireRole = ""
	WireEncode  WireRole = "encode"
	WireDecode  WireRole = "decode"
	WireVersion WireRole = "version"
)

// WireAnnot is one parsed //qvet:wire directive occurrence.
type WireAnnot struct {
	Format string
	Role   WireRole
	Pos    token.Pos
}

// WireVersionDecl records a //qvet:wire=<format> version constant.
type WireVersionDecl struct {
	Name string
	Pos  token.Pos
}

// Index is the program-wide annotation table.
type Index struct {
	ByFunc map[*ast.FuncDecl]*FuncAnnot
	// WireTypes maps annotated struct type declarations to their format
	// memberships (a struct may belong to several formats).
	WireTypes map[*ast.TypeSpec][]WireAnnot
	// WireVersions maps a format name to its annotated version consts.
	WireVersions map[string][]WireVersionDecl
	// allows: file -> line -> set of check names suppressed on that line.
	allows map[string]map[int]map[string]bool
	// Problems are malformed or misattached directives, reported by the
	// annot check.
	Problems []Diagnostic
}

// FuncOf returns the annotations for decl, or nil.
func (ix *Index) FuncOf(decl *ast.FuncDecl) *FuncAnnot {
	if ix == nil {
		return nil
	}
	return ix.ByFunc[decl]
}

// Allowed reports whether findings of check at pos are suppressed by a
// //qvet:allow comment.
func (ix *Index) Allowed(check string, pos token.Position) bool {
	if ix == nil {
		return false
	}
	lines := ix.allows[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][check]
}

func (ix *Index) allow(file string, line int, check string) {
	if ix.allows[file] == nil {
		ix.allows[file] = make(map[int]map[string]bool)
	}
	for _, l := range []int{line, line + 1} {
		if ix.allows[file][l] == nil {
			ix.allows[file][l] = make(map[string]bool)
		}
		ix.allows[file][l][check] = true
	}
}

func (ix *Index) problem(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	ix.Problems = append(ix.Problems, Diagnostic{
		Pos:     fset.Position(pos),
		Check:   "annot",
		Message: fmt.Sprintf(format, args...),
	})
}

// owner is the declaration a doc comment belongs to: exactly one field
// is non-nil. Spec-level docs (inside grouped type/const blocks) resolve
// to the spec; a GenDecl doc with a single spec resolves to that spec.
type owner struct {
	fn  *ast.FuncDecl
	typ *ast.TypeSpec
	val *ast.ValueSpec
}

// BuildIndex scans every file of every target package for //qvet:
// directives. validChecks is the closed set of check names accepted in
// //qvet:allow.
func BuildIndex(fset *token.FileSet, pkgs []*Package, validChecks map[string]bool) *Index {
	ix := &Index{
		ByFunc:       make(map[*ast.FuncDecl]*FuncAnnot),
		WireTypes:    make(map[*ast.TypeSpec][]WireAnnot),
		WireVersions: make(map[string][]WireVersionDecl),
		allows:       make(map[string]map[int]map[string]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			docOwner := make(map[*ast.CommentGroup]owner)
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Doc != nil {
						docOwner[d.Doc] = owner{fn: d}
					}
				case *ast.GenDecl:
					if d.Doc != nil {
						if o, ok := soleSpecOwner(d); ok {
							docOwner[d.Doc] = o
						}
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Doc != nil {
								docOwner[s.Doc] = owner{typ: s}
							}
						case *ast.ValueSpec:
							if s.Doc != nil {
								docOwner[s.Doc] = owner{val: s}
							}
						}
					}
				}
			}
			for _, group := range file.Comments {
				own := docOwner[group]
				for _, c := range group.List {
					if !strings.HasPrefix(c.Text, "//qvet:") {
						continue
					}
					ix.directive(fset, c, own, validChecks)
				}
			}
		}
	}
	return ix
}

// soleSpecOwner resolves a GenDecl-level doc comment to its single spec,
// covering the common `type Foo struct{...}` and `const V = 1` forms.
func soleSpecOwner(d *ast.GenDecl) (owner, bool) {
	if len(d.Specs) != 1 {
		return owner{}, false
	}
	switch s := d.Specs[0].(type) {
	case *ast.TypeSpec:
		return owner{typ: s}, true
	case *ast.ValueSpec:
		return owner{val: s}, true
	}
	return owner{}, false
}

func (ix *Index) directive(fset *token.FileSet, c *ast.Comment, own owner, validChecks map[string]bool) {
	body := strings.TrimPrefix(c.Text, "//qvet:")
	switch {
	case strings.HasPrefix(body, "allow="):
		rest := strings.TrimPrefix(body, "allow=")
		check := rest
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			check = rest[:i]
			if strings.TrimSpace(rest[i:]) == "" {
				ix.problem(fset, c.Pos(), "//qvet:allow=%s has an empty reason; drop the trailing space or state the reason", check)
			}
		}
		if !validChecks[check] {
			ix.problem(fset, c.Pos(), "//qvet:allow references unknown check %q (valid: %s)", check, joinSorted(validChecks))
			return
		}
		ix.allow(fset.Position(c.Pos()).Filename, fset.Position(c.Pos()).Line, check)

	case strings.HasPrefix(body, "phase="):
		name := Phase(strings.TrimPrefix(body, "phase="))
		if !ValidPhases[name] {
			ix.problem(fset, c.Pos(), "//qvet:phase=%s names a nonexistent phase (valid: reply, physics, exec)", name)
			return
		}
		fa := ix.attach(fset, c, own, "phase")
		if fa == nil {
			return
		}
		if fa.Phase != "" && fa.Phase != name {
			ix.problem(fset, c.Pos(), "conflicting phase annotations on %s: %s and %s", own.fn.Name.Name, fa.Phase, name)
			return
		}
		fa.Phase = name
		fa.PhasePos = c.Pos()

	case body == "noalloc":
		fa := ix.attach(fset, c, own, "noalloc")
		if fa == nil {
			return
		}
		fa.NoAlloc = true
		fa.NoAllocPos = c.Pos()

	case body == "det":
		fa := ix.attach(fset, c, own, "det")
		if fa == nil {
			return
		}
		fa.Det = true
		fa.DetPos = c.Pos()

	case strings.HasPrefix(body, "wire="):
		ix.wireDirective(fset, c, own, strings.TrimPrefix(body, "wire="))

	default:
		ix.problem(fset, c.Pos(), "unknown //qvet: directive %q (valid: phase=, noalloc, det, wire=, allow=)", body)
	}
}

// wireDirective parses the argument of //qvet:wire= ("<format>" on a
// struct type, "<format> encode|decode" on a function, "<format>
// version" on a const) and files it under the owning declaration.
func (ix *Index) wireDirective(fset *token.FileSet, c *ast.Comment, own owner, arg string) {
	fields := strings.Fields(arg)
	if len(fields) == 0 || len(fields) > 2 {
		ix.problem(fset, c.Pos(), "//qvet:wire=%s is malformed (want \"<format>\" on a struct, \"<format> encode|decode\" on a func, \"<format> version\" on a const)", arg)
		return
	}
	format := fields[0]
	if !validWireFormat(format) {
		ix.problem(fset, c.Pos(), "//qvet:wire format %q is malformed (lowercase letters, digits, '-', '_')", format)
		return
	}
	role := WireSchema
	if len(fields) == 2 {
		role = WireRole(fields[1])
	}
	wa := WireAnnot{Format: format, Role: role, Pos: c.Pos()}
	switch role {
	case WireEncode, WireDecode:
		if own.fn == nil {
			ix.problem(fset, c.Pos(), "//qvet:wire=%s %s must be attached to a function declaration's doc comment", format, role)
			return
		}
		if own.fn.Body == nil {
			ix.problem(fset, c.Pos(), "//qvet:wire=%s %s on %s: declaration has no body to analyze", format, role, own.fn.Name.Name)
			return
		}
		fa := ix.funcAnnot(own.fn)
		fa.Wire = append(fa.Wire, wa)
	case WireVersion:
		if own.val == nil || len(own.val.Names) != 1 {
			ix.problem(fset, c.Pos(), "//qvet:wire=%s version must be attached to a single const declaration", format)
			return
		}
		ix.WireVersions[format] = append(ix.WireVersions[format], WireVersionDecl{Name: own.val.Names[0].Name, Pos: c.Pos()})
	case WireSchema:
		if own.typ == nil {
			ix.problem(fset, c.Pos(), "//qvet:wire=%s must be attached to a struct type declaration (or name a role: encode, decode, version)", format)
			return
		}
		if _, ok := own.typ.Type.(*ast.StructType); !ok {
			ix.problem(fset, c.Pos(), "//qvet:wire=%s on %s: schema membership requires a struct type", format, own.typ.Name.Name)
			return
		}
		ix.WireTypes[own.typ] = append(ix.WireTypes[own.typ], wa)
	default:
		ix.problem(fset, c.Pos(), "//qvet:wire=%s names unknown role %q (valid: encode, decode, version)", format, string(role))
	}
}

func validWireFormat(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		ok := r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_'
		if !ok {
			return false
		}
	}
	return true
}

func joinSorted(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}

// funcAnnot returns (creating if needed) the annotation record for decl.
func (ix *Index) funcAnnot(decl *ast.FuncDecl) *FuncAnnot {
	fa := ix.ByFunc[decl]
	if fa == nil {
		fa = &FuncAnnot{}
		ix.ByFunc[decl] = fa
	}
	return fa
}

// attach binds a phase/noalloc/det directive to its doc-comment owner,
// recording a Problem when the directive is stranded somewhere the suite
// does not understand (not a func declaration's doc comment, or a
// bodyless declaration the checks cannot analyze).
func (ix *Index) attach(fset *token.FileSet, c *ast.Comment, own owner, kind string) *FuncAnnot {
	if own.fn == nil {
		ix.problem(fset, c.Pos(), "//qvet:%s directive is not attached to a function declaration's doc comment", kind)
		return nil
	}
	if own.fn.Body == nil {
		ix.problem(fset, c.Pos(), "//qvet:%s on %s: declaration has no body to analyze", kind, own.fn.Name.Name)
		return nil
	}
	return ix.funcAnnot(own.fn)
}
