package core

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The call graph is static and name-resolved: an edge exists where a
// CallExpr's callee resolves to a concrete *types.Func (package function
// or method on a concrete receiver). Calls through interfaces, function
// values, and reflection produce no edge — a documented soundness gap
// (DESIGN.md §9); the frame pipeline's hot paths call concrete methods,
// which is what makes the phase and noalloc closures checkable at all.
//
// Nodes are keyed by a world-independent string (package path + receiver
// type name + method name) because the same function is represented by
// different types.Func objects depending on whether its package was
// type-checked from source or loaded from export data as a dependency.

// Call is one resolved static call site.
type Call struct {
	CalleeKey string
	Pos       token.Pos
}

// FuncInfo is one function with a body in a target package.
type FuncInfo struct {
	Key   string
	Name  string // human-readable, e.g. (*World).ExecuteMove
	Decl  *ast.FuncDecl
	Pkg   *Package
	Annot *FuncAnnot // nil when unannotated
	Calls []Call
	File      string // absolute path of the defining file
	StartLine int    // first line of the declaration
	EndLine   int    // last line of the body
}

// Graph is the program call graph over target-package functions.
type Graph struct {
	Funcs map[string]*FuncInfo
}

// EnsureGraph builds (once) and returns the program call graph.
func (prog *Program) EnsureGraph() *Graph {
	if prog.Graph != nil {
		return prog.Graph
	}
	g := &Graph{Funcs: make(map[string]*FuncInfo)}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				start := prog.Fset.Position(fd.Pos())
				end := prog.Fset.Position(fd.Body.End())
				fi := &FuncInfo{
					Key:       FuncKey(obj),
					Name:      prettyName(obj),
					Decl:      fd,
					Pkg:       pkg,
					Annot:     prog.Annots.FuncOf(fd),
					File:      start.Filename,
					StartLine: start.Line,
					EndLine:   end.Line,
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := CalleeOf(pkg.Info, call); callee != nil {
						fi.Calls = append(fi.Calls, Call{CalleeKey: FuncKey(callee), Pos: call.Pos()})
					}
					return true
				})
				g.Funcs[fi.Key] = fi
			}
		}
	}
	prog.Graph = g
	return g
}

// CalleeOf resolves a call expression to its static callee, or nil for
// dynamic calls (interface methods resolve to the interface's method
// object, which has no body in the graph and therefore dangles).
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f.Origin()
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f.Origin()
		}
	}
	return nil
}

// FuncKey returns the world-independent node key for f.
func FuncKey(f *types.Func) string {
	f = f.Origin()
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	if recv := recvTypeName(f); recv != "" {
		return pkg + "." + recv + "." + f.Name()
	}
	return pkg + "." + f.Name()
}

func prettyName(f *types.Func) string {
	if recv := recvTypeName(f); recv != "" {
		return "(*" + recv + ")." + f.Name()
	}
	return f.Name()
}

func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return types.TypeString(t, nil)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
