module qserve/tools

go 1.22
